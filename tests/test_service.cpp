// Service-layer integration tests: MuriDaemon in manual_time mode driven
// deterministically through the real HTTP listener — submit/status/cancel
// lifecycle, idempotent names, backpressure (429 + Retry-After), request
// validation, the decisions endpoint against the schema validator,
// graceful-stop queue draining, and WAL resume (both after a clean stop
// and from a crash-image copy of a live WAL). The jobs-report fold is
// checked against the same daemon-produced log.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/jobtrace.h"
#include "obs/json.h"
#include "obs/jobs_report.h"
#include "obs/provenance.h"
#include "service/daemon.h"
#include "service/http_client.h"

namespace muri::service {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "muri_service_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

DaemonOptions manual_options() {
  DaemonOptions options;
  options.manual_time = true;
  options.cluster.num_machines = 2;
  options.cluster.gpus_per_machine = 4;
  options.round_interval_s = 360;
  return options;
}

ClientResponse post_json(const MuriDaemon& daemon, const std::string& path,
                         const std::string& body) {
  ClientResponse resp;
  std::string error;
  EXPECT_TRUE(http_request(daemon.port(), "POST", path, body, resp, &error))
      << error;
  return resp;
}

ClientResponse get(const MuriDaemon& daemon, const std::string& path) {
  ClientResponse resp;
  std::string error;
  EXPECT_TRUE(http_request(daemon.port(), "GET", path, "", resp, &error))
      << error;
  return resp;
}

ClientResponse del(const MuriDaemon& daemon, const std::string& path) {
  ClientResponse resp;
  std::string error;
  EXPECT_TRUE(
      http_request(daemon.port(), "DELETE", path, "", resp, &error))
      << error;
  return resp;
}

obs::JsonValue parse(const std::string& body) {
  obs::JsonValue v;
  std::string error;
  EXPECT_TRUE(obs::parse_json(body, v, &error)) << error << ": " << body;
  return v;
}

// Submits one job, returns its id (asserts 202).
JobId submit(const MuriDaemon& daemon, const std::string& model, int gpus,
             long long iterations, const std::string& name = "") {
  std::string body = "{\"model\":\"" + model +
                     "\",\"gpus\":" + std::to_string(gpus) +
                     ",\"iterations\":" + std::to_string(iterations);
  if (!name.empty()) body += ",\"name\":\"" + name + "\"";
  body += "}";
  const auto resp = post_json(daemon, "/jobs", body);
  EXPECT_EQ(resp.status, 202) << resp.body;
  const auto json = parse(resp.body);
  EXPECT_TRUE(json.at("job").is_number()) << resp.body;
  return static_cast<JobId>(json.at("job").number);
}

std::string state_of(const MuriDaemon& daemon, JobId id) {
  const auto resp = get(daemon, "/jobs/" + std::to_string(id));
  if (resp.status != 200) return "http:" + std::to_string(resp.status);
  return parse(resp.body).at("state").string;
}

// Steps the manual clock until the job reaches a terminal state (or the
// step budget runs out).
std::string run_to_completion(MuriDaemon& daemon, JobId id,
                              double step_s = 60, int max_steps = 4000) {
  for (int i = 0; i < max_steps; ++i) {
    const std::string state = state_of(daemon, id);
    if (state == "finished" || state == "cancelled") return state;
    daemon.step(step_s);
  }
  return state_of(daemon, id);
}

TEST(ServiceDaemon, SubmitRunsAndFinishesAJob) {
  MuriDaemon daemon(manual_options());
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  const JobId id = submit(daemon, "resnet18", 2, 500);
  // Accepted but not yet drained: the admission queue holds it.
  EXPECT_EQ(state_of(daemon, id), "admitted");

  daemon.step(0);  // drain + immediate round (manual mode skips debounce)
  const auto status = parse(get(daemon, "/jobs/" + std::to_string(id)).body);
  EXPECT_EQ(status.at("state").string, "running");
  EXPECT_EQ(status.at("model").string, "resnet18");
  EXPECT_DOUBLE_EQ(status.at("gpus").number, 2);

  EXPECT_EQ(run_to_completion(daemon, id), "finished");
  const auto done = parse(get(daemon, "/jobs/" + std::to_string(id)).body);
  EXPECT_GE(done.at("end_t").number, done.at("submit_t").number);
  EXPECT_DOUBLE_EQ(done.at("done").number, 500);

  daemon.stop();
}

TEST(ServiceDaemon, StatusExplainEmbedsDecisionHistory) {
  MuriDaemon daemon(manual_options());
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  const JobId id = submit(daemon, "vgg16", 1, 200);
  daemon.step(0);

  const auto resp =
      get(daemon, "/jobs/" + std::to_string(id) + "?explain=1");
  ASSERT_EQ(resp.status, 200);
  const auto json = parse(resp.body);
  EXPECT_TRUE(json.at("status").is_object());
  EXPECT_TRUE(json.at("explain").is_object()) << resp.body;
  EXPECT_DOUBLE_EQ(json.at("explain").at("job").number,
                   static_cast<double>(id));
  daemon.stop();
}

TEST(ServiceDaemon, DuplicateNameReturnsOriginalJob) {
  MuriDaemon daemon(manual_options());
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  const JobId id = submit(daemon, "bert", 1, 300, "train-a");
  const auto dup = post_json(
      daemon, "/jobs",
      "{\"model\":\"bert\",\"gpus\":1,\"iterations\":300,"
      "\"name\":\"train-a\"}");
  EXPECT_EQ(dup.status, 200) << dup.body;  // not 202: nothing new admitted
  const auto json = parse(dup.body);
  EXPECT_DOUBLE_EQ(json.at("job").number, static_cast<double>(id));
  EXPECT_TRUE(json.at("duplicate").boolean) << dup.body;

  // Exactly one job exists.
  daemon.step(0);
  const auto list = parse(get(daemon, "/jobs").body);
  EXPECT_EQ(list.at("jobs").array.size(), 1u);
  daemon.stop();
}

TEST(ServiceDaemon, FullQueueAnswers429WithRetryAfter) {
  DaemonOptions options = manual_options();
  options.queue_capacity = 2;
  options.retry_after_s = 7;
  MuriDaemon daemon(std::move(options));
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  // Manual time: nothing drains until step(), so the queue fills.
  submit(daemon, "resnet18", 1, 100);
  submit(daemon, "resnet18", 1, 100);
  const auto rejected = post_json(
      daemon, "/jobs", "{\"model\":\"resnet18\",\"gpus\":1,\"iterations\":100}");
  EXPECT_EQ(rejected.status, 429) << rejected.body;
  EXPECT_EQ(rejected.header("retry-after"), "7");

  // Draining frees capacity; the retry succeeds.
  daemon.step(0);
  submit(daemon, "resnet18", 1, 100);
  EXPECT_EQ(daemon.queue_stats().rejected_full, 1);
  daemon.stop();
}

TEST(ServiceDaemon, RejectsMalformedSubmissions) {
  MuriDaemon daemon(manual_options());
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  EXPECT_EQ(post_json(daemon, "/jobs", "{not json").status, 400);
  EXPECT_EQ(post_json(daemon, "/jobs",
                      "{\"model\":\"nosuch\",\"gpus\":1,\"iterations\":1}")
                .status,
            400);
  EXPECT_EQ(post_json(daemon, "/jobs",
                      "{\"model\":\"resnet18\",\"gpus\":0,\"iterations\":1}")
                .status,
            400);
  EXPECT_EQ(post_json(daemon, "/jobs",
                      "{\"model\":\"resnet18\",\"gpus\":999,"
                      "\"iterations\":1}")
                .status,
            400);
  EXPECT_EQ(post_json(daemon, "/jobs",
                      "{\"model\":\"resnet18\",\"gpus\":1,\"iterations\":0}")
                .status,
            400);
  // Nothing slipped through.
  EXPECT_EQ(daemon.queue_stats().accepted, 0);
  daemon.stop();
}

TEST(ServiceDaemon, CancelCoversQueuedRunningAndTerminalStates) {
  MuriDaemon daemon(manual_options());
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  // Cancel while still in the admission queue: the engine never sees it.
  const JobId queued = submit(daemon, "resnet18", 1, 100);
  EXPECT_EQ(del(daemon, "/jobs/" + std::to_string(queued)).status, 200);
  daemon.step(0);
  EXPECT_EQ(get(daemon, "/jobs/" + std::to_string(queued)).status, 404);

  // Cancel while running.
  const JobId running = submit(daemon, "resnet18", 1, 100000);
  daemon.step(0);
  ASSERT_EQ(state_of(daemon, running), "running");
  EXPECT_EQ(del(daemon, "/jobs/" + std::to_string(running)).status, 200);
  EXPECT_EQ(state_of(daemon, running), "cancelled");

  // A terminal job cannot be cancelled again.
  EXPECT_EQ(del(daemon, "/jobs/" + std::to_string(running)).status, 409);
  // Unknown ids are a 404.
  EXPECT_EQ(del(daemon, "/jobs/12345").status, 404);
  daemon.stop();
}

TEST(ServiceDaemon, DecisionsEndpointPassesTheSchemaValidator) {
  MuriDaemon daemon(manual_options());
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  const JobId a = submit(daemon, "resnet18", 2, 400);
  const JobId b = submit(daemon, "vgg19", 2, 400);
  daemon.step(0);
  EXPECT_EQ(run_to_completion(daemon, a), "finished");
  EXPECT_EQ(run_to_completion(daemon, b), "finished");

  const auto resp = get(daemon, "/decisions");
  ASSERT_EQ(resp.status, 200);
  EXPECT_EQ(resp.header("content-type"), "application/x-ndjson");
  std::string validate_error;
  EXPECT_TRUE(obs::validate_decision_log(resp.body, &validate_error))
      << validate_error;
  daemon.stop();
}

TEST(ServiceDaemon, JobsReportFoldsTheDaemonLog) {
  MuriDaemon daemon(manual_options());
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  const JobId a = submit(daemon, "resnet18", 1, 300);
  daemon.step(0);
  EXPECT_EQ(run_to_completion(daemon, a), "finished");
  const JobId cancelled = submit(daemon, "bert", 1, 100000);
  daemon.step(0);
  EXPECT_EQ(del(daemon, "/jobs/" + std::to_string(cancelled)).status, 200);

  std::vector<obs::DecisionRecord> records;
  std::string parse_error;
  ASSERT_TRUE(obs::parse_decision_log(daemon.decisions_jsonl(), records,
                                      &parse_error))
      << parse_error;
  const auto report = obs::build_jobs_report(records);
  ASSERT_EQ(report.rows.size(), 2u);
  EXPECT_EQ(report.finished, 1);
  EXPECT_EQ(report.cancelled, 1);
  EXPECT_EQ(report.in_flight, 0);

  const auto& row = report.rows[0];
  EXPECT_EQ(row.job, a);
  EXPECT_TRUE(row.finished);
  ASSERT_TRUE(row.has_wait());
  EXPECT_GE(row.wait(), 0);
  ASSERT_TRUE(row.has_jct());
  EXPECT_GT(row.jct(), 0);

  // Renderers are byte-stable: same report, same bytes.
  EXPECT_EQ(obs::jobs_report_text(report), obs::jobs_report_text(report));
  EXPECT_EQ(obs::jobs_report_csv(report), obs::jobs_report_csv(report));
  EXPECT_EQ(obs::jobs_report_json(report), obs::jobs_report_json(report));
  const std::string csv = obs::jobs_report_csv(report);
  EXPECT_NE(csv.find("job,state,submit_t,first_scheduled_t"),
            std::string::npos)
      << csv;
  daemon.stop();
}

TEST(ServiceDaemon, GracefulStopDrainsTheQueueIntoTheWal) {
  const std::string wal = temp_path("drain.wal");
  std::remove(wal.c_str());
  JobId id = kInvalidJob;
  {
    DaemonOptions options = manual_options();
    options.wal_path = wal;
    MuriDaemon daemon(std::move(options));
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;
    // Accepted but never drained by a step: stop() must persist it.
    id = submit(daemon, "gpt2", 2, 600, "drained-job");
    daemon.stop();
  }

  // The restarted daemon recovers the job from the WAL and finishes it.
  DaemonOptions options = manual_options();
  options.wal_path = wal;
  options.resume = true;
  MuriDaemon daemon(std::move(options));
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;
  const auto resp = get(daemon, "/jobs/" + std::to_string(id));
  ASSERT_EQ(resp.status, 200) << "job lost across restart";
  const auto json = parse(resp.body);
  EXPECT_EQ(json.at("model").string, "gpt2");
  EXPECT_EQ(json.at("name").string, "drained-job");
  daemon.step(0);
  EXPECT_EQ(run_to_completion(daemon, id), "finished");
  daemon.stop();
}

TEST(ServiceDaemon, ResumesFromACrashImageOfALiveWal) {
  const std::string wal = temp_path("crash_live.wal");
  const std::string image = temp_path("crash_image.wal");
  std::remove(wal.c_str());
  JobId id = kInvalidJob;
  double progress_before = 0;
  {
    DaemonOptions options = manual_options();
    options.wal_path = wal;
    options.fsync = recovery::DurableSinkOptions::Fsync::kEveryRecord;
    MuriDaemon daemon(std::move(options));
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;
    id = submit(daemon, "resnet18", 1, 100000);
    daemon.step(0);
    daemon.step(600);
    const auto json = parse(get(daemon, "/jobs/" + std::to_string(id)).body);
    EXPECT_EQ(json.at("state").string, "running");
    progress_before = json.at("done").number;
    EXPECT_GT(progress_before, 0);

    // Copy the WAL while the daemon is live: the moral equivalent of a
    // kill -9 — no daemon_stop, no progress checkpoint in the image.
    spit(image, slurp(wal));
    daemon.stop();
  }

  DaemonOptions options = manual_options();
  options.wal_path = image;
  options.resume = true;
  MuriDaemon daemon(std::move(options));
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;
  const auto resp = get(daemon, "/jobs/" + std::to_string(id));
  ASSERT_EQ(resp.status, 200) << "job lost in crash image";
  // Restored jobs re-enter as queued; the first post-resume round
  // re-places them.
  EXPECT_EQ(parse(resp.body).at("state").string, "queued");
  daemon.step(0);
  const auto json = parse(get(daemon, "/jobs/" + std::to_string(id)).body);
  EXPECT_EQ(json.at("state").string, "running");
  // Submission time survives recovery (the queueing clock is durable).
  EXPECT_GE(json.at("submit_t").number, 0);

  // The resumed daemon's log still validates, and the job can finish.
  std::string validate_error;
  EXPECT_TRUE(
      obs::validate_decision_log(daemon.decisions_jsonl(), &validate_error))
      << validate_error;
  daemon.stop();
}

TEST(ServiceDaemon, UnknownSchedulerFailsToStart) {
  DaemonOptions options = manual_options();
  options.scheduler = "nosuch";
  MuriDaemon daemon(std::move(options));
  std::string error;
  EXPECT_FALSE(daemon.start(&error));
  EXPECT_NE(error.find("nosuch"), std::string::npos) << error;
}

TEST(ServiceDaemon, MetricsExposeDaemonGauges) {
  MuriDaemon daemon(manual_options());
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;
  submit(daemon, "resnet18", 1, 400);
  daemon.step(0);

  const auto resp = get(daemon, "/metrics");
  ASSERT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("muri_daemon_active_jobs"), std::string::npos);
  EXPECT_NE(resp.body.find("muri_daemon_rounds_total"), std::string::npos);
  EXPECT_NE(resp.body.find("muri_daemon_sim_time"), std::string::npos);
  daemon.stop();
}

TEST(ServiceDaemon, JobApiErrorsCarryStructuredBodies) {
  // Every job-API error body is {"error": ..., "code": ...} so clients
  // and the loadgen never have to scrape free text.
  MuriDaemon daemon(manual_options());
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  auto expect_error_body = [&](const ClientResponse& resp, int code) {
    EXPECT_EQ(resp.status, code);
    const auto json = parse(resp.body);
    EXPECT_TRUE(json.at("error").is_string()) << resp.body;
    EXPECT_FALSE(json.at("error").string.empty()) << resp.body;
    EXPECT_TRUE(json.at("code").is_number()) << resp.body;
    EXPECT_EQ(static_cast<int>(json.at("code").number), code) << resp.body;
  };

  expect_error_body(get(daemon, "/jobs/12345"), 404);
  expect_error_body(del(daemon, "/jobs/12345"), 404);
  expect_error_body(post_json(daemon, "/jobs", "{not json"), 400);
  expect_error_body(
      post_json(daemon, "/jobs",
                "{\"model\":\"resnet18\",\"gpus\":0,\"iterations\":1}"),
      400);
  daemon.stop();
}

TEST(ServiceDaemon, MaxActiveJobsBoundSheds429) {
  DaemonOptions options = manual_options();
  options.max_active_jobs = 2;
  MuriDaemon daemon(std::move(options));
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  const JobId a = submit(daemon, "resnet18", 1, 400);
  submit(daemon, "resnet18", 1, 100000);
  daemon.step(0);  // both land in the engine

  // The system is at its bound: the next submission is shed with the
  // structured 429 body and a Retry-After hint.
  const auto resp = post_json(
      daemon, "/jobs",
      "{\"model\":\"resnet18\",\"gpus\":1,\"iterations\":100}");
  EXPECT_EQ(resp.status, 429) << resp.body;
  EXPECT_FALSE(resp.header("retry-after").empty());
  const auto json = parse(resp.body);
  EXPECT_EQ(static_cast<int>(json.at("code").number), 429);

  // Capacity frees up as jobs finish.
  ASSERT_EQ(run_to_completion(daemon, a), "finished");
  EXPECT_EQ(post_json(daemon, "/jobs",
                      "{\"model\":\"resnet18\",\"gpus\":1,"
                      "\"iterations\":100}")
                .status,
            202);
  daemon.stop();
}

TEST(ServiceDaemon, HealthzReflectsWatchdogStateAndRecovers) {
  MuriDaemon daemon(manual_options());
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;
  daemon.step(0);  // seed the heartbeat

  // Healthy: 200 with a JSON document; ?plain=1 keeps the shell form.
  auto resp = get(daemon, "/healthz");
  ASSERT_EQ(resp.status, 200) << resp.body;
  auto json = parse(resp.body);
  EXPECT_EQ(json.at("status").string, "ok");
  EXPECT_TRUE(json.at("uptime_s").is_number());
  EXPECT_TRUE(json.at("version").is_string());
  resp = get(daemon, "/healthz?plain=1");
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "ok\n");

  // A wedged event loop (injected) flips /healthz to degraded on the
  // very next evaluation — health is computed on read, so a stalled
  // loop cannot suppress its own detection.
  daemon.inject_loop_stall_for_test(daemon.options().watchdog_stall_s + 5);
  resp = get(daemon, "/healthz");
  ASSERT_EQ(resp.status, 503) << resp.body;
  json = parse(resp.body);
  EXPECT_EQ(json.at("status").string, "degraded");
  EXPECT_NE(json.at("reason").string.find("stall"), std::string::npos)
      << resp.body;
  resp = get(daemon, "/healthz?plain=1");
  EXPECT_EQ(resp.status, 503);
  EXPECT_EQ(resp.body, "degraded\n");

  // The transition was counted.
  resp = get(daemon, "/metrics");
  ASSERT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("muri_watchdog_violations_total"),
            std::string::npos);

  // The next loop pass refreshes the heartbeat: recovered.
  daemon.step(0);
  resp = get(daemon, "/healthz");
  EXPECT_EQ(resp.status, 200) << resp.body;
  EXPECT_EQ(parse(resp.body).at("status").string, "ok");
  daemon.stop();
}

TEST(ServiceDaemon, StatsServesTheDashboardDocument) {
  DaemonOptions options = manual_options();
  options.sample_interval_s = 1.0;  // manual mode: one sample per step
  MuriDaemon daemon(std::move(options));
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;
  const JobId id = submit(daemon, "resnet18", 1, 400);
  ASSERT_EQ(run_to_completion(daemon, id), "finished");

  const auto resp = get(daemon, "/stats");
  ASSERT_EQ(resp.status, 200) << resp.body;
  const auto json = parse(resp.body);
  EXPECT_EQ(json.at("scheduler").string, "Muri-L");
  EXPECT_EQ(json.at("health").at("status").string, "ok");
  EXPECT_TRUE(json.at("queue").at("depth").is_number());
  EXPECT_DOUBLE_EQ(json.at("queue").at("accepted").number, 1);
  EXPECT_TRUE(json.at("jobs").at("rounds").is_number());
  EXPECT_GT(json.at("jobs").at("rounds").number, 0);
  // The observer fed the latency summaries: one wait and one JCT.
  EXPECT_DOUBLE_EQ(json.at("wait_s").at("count").number, 1);
  EXPECT_DOUBLE_EQ(json.at("jct_s").at("count").number, 1);
  EXPECT_GT(json.at("jct_s").at("p99").number, 0);
  // Round phases carry observations (schedule/place measured per round).
  EXPECT_GT(json.at("round_phases").at("schedule").at("count").number, 0);
  EXPECT_GT(json.at("round_phases").at("place").at("count").number, 0);
  // No SLO targets configured; history is on.
  EXPECT_FALSE(json.at("slo").at("enabled").boolean);
  EXPECT_TRUE(json.at("history").at("enabled").boolean);
  EXPECT_GT(json.at("history").at("samples").number, 0);
  daemon.stop();
}

TEST(ServiceDaemon, MetricsHistoryServesSampledSeries) {
  DaemonOptions options = manual_options();
  options.sample_interval_s = 1.0;
  options.history_capacity = 32;
  MuriDaemon daemon(std::move(options));
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;
  const JobId id = submit(daemon, "resnet18", 1, 400);
  run_to_completion(daemon, id);

  const auto resp = get(daemon, "/metrics/history");
  ASSERT_EQ(resp.status, 200) << resp.body;
  const auto json = parse(resp.body);
  EXPECT_GT(json.at("samples").number, 0);
  EXPECT_DOUBLE_EQ(json.at("capacity_per_series").number, 32);
  const obs::JsonValue& series = json.at("series");
  ASSERT_TRUE(series.is_object());
  EXPECT_GT(series.at("queue_depth").at("count").number, 0);
  EXPECT_TRUE(series.at("sim_time").at("points").is_array());
  // The observer's event series landed next to the sampled ones.
  EXPECT_GT(series.at("queue_wait_s").at("count").number, 0);

  // points=0 strips the raw arrays; window= narrows the query.
  const auto lean = get(daemon, "/metrics/history?window=1000&points=0");
  ASSERT_EQ(lean.status, 200);
  EXPECT_EQ(lean.body.find("\"points\""), std::string::npos);
  daemon.stop();
}

TEST(ServiceDaemon, MetricsHistoryIs404WhenSamplingOff) {
  MuriDaemon daemon(manual_options());  // sample_interval_s = 0
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;
  const auto resp = get(daemon, "/metrics/history");
  EXPECT_EQ(resp.status, 404);
  const auto json = parse(resp.body);
  EXPECT_TRUE(json.at("error").is_string());
  EXPECT_EQ(static_cast<int>(json.at("code").number), 404);
  daemon.stop();
}

TEST(ServiceDaemon, SloTracksInjectedLoopStall) {
  DaemonOptions options = manual_options();
  options.slo.loop_stall_max_s = 0.5;
  MuriDaemon daemon(std::move(options));
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;
  ASSERT_NE(daemon.slo(), nullptr);

  daemon.step(0);  // seed the heartbeat
  daemon.inject_loop_stall_for_test(10.0);
  daemon.step(0);  // the pump observes the 10s stall and evaluates

  EXPECT_GE(daemon.slo()->violations_total(), 1);
  const auto resp = get(daemon, "/stats");
  ASSERT_EQ(resp.status, 200);
  const auto json = parse(resp.body);
  ASSERT_TRUE(json.at("slo").at("enabled").boolean);
  bool found = false;
  for (const obs::JsonValue& t : json.at("slo").at("targets").array) {
    if (t.at("name").string != "loop_stall_s") continue;
    found = true;
    EXPECT_GE(t.at("violations").number, 1) << resp.body;
  }
  EXPECT_TRUE(found) << resp.body;
  daemon.stop();
}

TEST(ServiceDaemon, LivePlaneOffIsBitIdenticalToPlaneOn) {
  // The obs-off contract, extended to the live plane: sampling and SLO
  // tracking change nothing in the decision stream. Two daemons, same
  // submissions and steps, one with the plane fully on — identical
  // decisions JSONL, byte for byte.
  auto drive = [](MuriDaemon& daemon) {
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;
    submit(daemon, "resnet18", 2, 400, "a");
    submit(daemon, "vgg19", 1, 300, "b");
    for (int i = 0; i < 40; ++i) daemon.step(60);
  };

  MuriDaemon plain(manual_options());
  drive(plain);

  DaemonOptions options = manual_options();
  options.sample_interval_s = 0.25;
  options.history_capacity = 16;
  options.slo.queue_wait_p99_s = 0.001;  // guaranteed violations
  options.slo.loop_stall_max_s = 0.0001;
  MuriDaemon instrumented(std::move(options));
  drive(instrumented);
  EXPECT_GE(instrumented.slo()->violations_total(), 1);

  EXPECT_EQ(plain.decisions_jsonl(), instrumented.decisions_jsonl());
  plain.stop();
  instrumented.stop();
}

TEST(ServiceDaemon, TimelineEndpointServesAttributedSpans) {
  MuriDaemon daemon(manual_options());
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;
  const JobId a = submit(daemon, "resnet18", 2, 400, "a");
  submit(daemon, "vgg19", 1, 300, "b");
  ASSERT_EQ(run_to_completion(daemon, a), "finished");

  const auto resp = get(daemon, "/jobs/" + std::to_string(a) + "/timeline");
  ASSERT_EQ(resp.status, 200) << resp.body;
  EXPECT_EQ(resp.header("content-type"), "application/json");
  const auto json = parse(resp.body);
  EXPECT_TRUE(json.at("version").is_string());
  EXPECT_TRUE(json.at("git_sha").is_string());
  const obs::JsonValue& t = json.at("timeline");
  ASSERT_TRUE(t.is_object()) << resp.body;
  EXPECT_TRUE(t.at("finished").boolean);
  EXPECT_TRUE(t.at("valid").boolean) << resp.body;
  // HTTP accept precedes the engine submit; both are reported.
  EXPECT_TRUE(t.at("accept").is_number());
  // The buckets partition [submit, finish]: they must sum to the JCT.
  double sum = 0;
  for (const auto& [name, v] : t.at("buckets").object) sum += v.number;
  EXPECT_NEAR(sum, t.at("jct").number, 1e-6) << resp.body;
  EXPECT_NEAR(t.at("reported_jct").number, t.at("jct").number, 1e-6);
  ASSERT_FALSE(t.at("spans").array.empty());
  // Every span's rounds must exist in the daemon's decision log — the
  // same numbering explain-job reports.
  std::vector<obs::DecisionRecord> records;
  ASSERT_TRUE(obs::parse_decision_log(daemon.decisions_jsonl(), records));
  std::set<std::int64_t> known_rounds;
  for (const auto& r : records) {
    known_rounds.insert(static_cast<std::int64_t>(r.value.at("round").number));
  }
  for (const obs::JsonValue& span : t.at("spans").array) {
    for (const obs::JsonValue& round : span.at("rounds").array) {
      EXPECT_TRUE(known_rounds.count(static_cast<std::int64_t>(round.number)))
          << resp.body;
    }
  }
  // The same spans fold back out of the decision log.
  obs::JobTraceLog fold;
  obs::build_job_traces(records, fold);
  obs::JobTimeline folded;
  ASSERT_TRUE(fold.timeline(a, folded));
  EXPECT_EQ(obs::validate_timeline(folded), "");
  EXPECT_NEAR(folded.total_seconds(), t.at("jct").number, 1e-6);

  // Unknown jobs and bad suffixes 404.
  EXPECT_EQ(get(daemon, "/jobs/999/timeline").status, 404);
  EXPECT_EQ(get(daemon, "/jobs/" + std::to_string(a) + "/nope").status, 404);
  // /stats aggregates the same buckets.
  const auto stats = parse(get(daemon, "/stats").body);
  ASSERT_TRUE(stats.at("wait_buckets").is_object());
  EXPECT_TRUE(stats.at("wait_buckets").at("enabled").boolean);
  EXPECT_GE(stats.at("wait_buckets").at("finished_jobs").number, 1);
  EXPECT_TRUE(stats.at("wait_buckets").at("seconds").at("run").is_number());
  daemon.stop();
}

TEST(ServiceDaemon, JobTraceOffIsBitIdenticalAndTimeline404s) {
  // The obs-off contract for the per-job plane: a daemon with tracing
  // disabled produces byte-identical decisions for the same drive; the
  // only visible difference is the endpoint answering 404.
  auto drive = [](MuriDaemon& daemon) {
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;
    submit(daemon, "resnet18", 2, 400, "a");
    submit(daemon, "vgg19", 1, 300, "b");
    for (int i = 0; i < 40; ++i) daemon.step(60);
  };
  MuriDaemon traced(manual_options());
  drive(traced);
  DaemonOptions options = manual_options();
  options.jobtrace_enabled = false;
  MuriDaemon bare(std::move(options));
  drive(bare);

  EXPECT_EQ(traced.decisions_jsonl(), bare.decisions_jsonl());
  EXPECT_EQ(get(traced, "/jobs/0/timeline").status, 200);
  const auto off = get(bare, "/jobs/0/timeline");
  EXPECT_EQ(off.status, 404);
  EXPECT_EQ(off.header("content-type"), "application/json");
  const auto stats = parse(get(bare, "/stats").body);
  EXPECT_FALSE(stats.at("wait_buckets").at("enabled").boolean);
  traced.stop();
  bare.stop();
}

TEST(ServiceDaemon, EveryJsonEndpointDeclaresItsContentType) {
  DaemonOptions options = manual_options();
  options.sample_interval_s = 0.25;  // so /metrics/history answers 200
  MuriDaemon daemon(std::move(options));
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;
  const JobId id = submit(daemon, "resnet18", 1, 200, "a");
  daemon.step(0);

  const auto expect_json = [&](const ClientResponse& resp,
                               const std::string& what) {
    EXPECT_EQ(resp.header("content-type"), "application/json")
        << what << ": " << resp.body;
    obs::JsonValue v;
    std::string parse_error;
    EXPECT_TRUE(obs::parse_json(resp.body, v, &parse_error))
        << what << ": " << parse_error;
  };
  expect_json(get(daemon, "/healthz"), "/healthz");
  expect_json(get(daemon, "/stats"), "/stats");
  expect_json(get(daemon, "/metrics.json"), "/metrics.json");
  expect_json(get(daemon, "/metrics/history"), "/metrics/history");
  expect_json(get(daemon, "/jobs"), "/jobs");
  expect_json(get(daemon, "/jobs/" + std::to_string(id)), "/jobs/<id>");
  expect_json(get(daemon, "/jobs/" + std::to_string(id) + "?explain=1"),
              "/jobs/<id>?explain=1");
  expect_json(get(daemon, "/jobs/" + std::to_string(id) + "/timeline"),
              "timeline");
  expect_json(post_json(daemon, "/jobs", "{\"model\":\"resnet18\","
                                         "\"gpus\":1,\"iterations\":100}"),
              "POST /jobs");
  // Error bodies are JSON too, whatever the status.
  expect_json(get(daemon, "/jobs/12345"), "404 unknown job");
  expect_json(get(daemon, "/jobs/xyz"), "404 bad id");
  expect_json(post_json(daemon, "/jobs", "{}"), "400 malformed");
  // Non-JSON endpoints keep their own types.
  EXPECT_EQ(get(daemon, "/decisions").header("content-type"),
            "application/x-ndjson");
  const std::string metrics_type = get(daemon, "/metrics").header(
      "content-type");
  EXPECT_NE(metrics_type.find("text/plain"), std::string::npos);
  daemon.stop();
}

}  // namespace
}  // namespace muri::service
