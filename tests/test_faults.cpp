// Fault-domain tests: injector determinism, worker-monitor blacklist
// policy, simulator crash/straggler integration, degraded-group
// continuation, and executor thread-death without deadlock.
#include <gtest/gtest.h>

#include <chrono>
#include <future>

#include "cluster/cluster.h"
#include "fault/fault.h"
#include "fault/monitor.h"
#include "runtime/executor.h"
#include "scheduler/baselines.h"
#include "scheduler/muri.h"
#include "sim/simulator.h"

namespace muri {
namespace {

Job make_job(JobId id, ModelKind m, int gpus, Time submit, double solo_secs) {
  Job j;
  j.id = id;
  j.model = m;
  j.num_gpus = gpus;
  j.submit_time = submit;
  j.profile = model_profile(m, gpus);
  j.iterations = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(solo_secs / j.profile.iteration_time()));
  return j;
}

Trace complementary_trace(int copies = 1) {
  Trace t;
  t.name = "faulty";
  JobId id = 0;
  for (int c = 0; c < copies; ++c) {
    t.jobs.push_back(make_job(id++, ModelKind::kShuffleNet, 1, 0, 600));
    t.jobs.push_back(make_job(id++, ModelKind::kA2c, 1, 0, 600));
    t.jobs.push_back(make_job(id++, ModelKind::kGpt2, 1, 0, 600));
    t.jobs.push_back(make_job(id++, ModelKind::kVgg16, 1, 0, 600));
  }
  return t;
}

SimOptions small_cluster(int machines, int gpus) {
  SimOptions opt;
  opt.cluster.num_machines = machines;
  opt.cluster.gpus_per_machine = gpus;
  opt.schedule_interval = 60;
  opt.restart_penalty = 5;
  return opt;
}

// ---------------------------------------------------------------------------
// FaultInjector

TEST(FaultInjector, DisabledByDefault) {
  FaultInjector inj(4, FaultInjectorOptions{});
  EXPECT_FALSE(inj.enabled());
  EXPECT_TRUE(inj.pop_until(1e12).empty());
}

TEST(FaultInjector, CrashRecoverAlternatesPerMachine) {
  FaultInjectorOptions fopt;
  fopt.machine_mtbf_hours = 0.5;
  fopt.machine_mttr_hours = 0.25;
  FaultInjector inj(2, fopt);
  ASSERT_TRUE(inj.enabled());
  std::vector<bool> up(2, true);
  Time last = 0;
  int downs = 0;
  for (const FaultEvent& e : inj.pop_until(48 * 3600.0)) {
    EXPECT_GE(e.time, last);  // nondecreasing timeline
    last = e.time;
    const auto m = static_cast<size_t>(e.machine);
    ASSERT_LT(m, up.size());
    if (e.kind == FaultEvent::Kind::kMachineDown) {
      EXPECT_TRUE(up[m]);  // strict down/up alternation per machine
      up[m] = false;
      ++downs;
    } else if (e.kind == FaultEvent::Kind::kMachineUp) {
      EXPECT_FALSE(up[m]);
      up[m] = true;
    }
  }
  EXPECT_GT(downs, 0);
}

TEST(FaultInjector, DeterministicAcrossInstances) {
  FaultInjectorOptions fopt;
  fopt.machine_mtbf_hours = 1.0;
  fopt.straggler_rate_per_hour = 2.0;
  FaultInjector a(3, fopt);
  FaultInjector b(3, fopt);
  const auto ea = a.pop_until(24 * 3600.0);
  const auto eb = b.pop_until(24 * 3600.0);
  ASSERT_EQ(ea.size(), eb.size());
  ASSERT_FALSE(ea.empty());
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].kind, eb[i].kind);
    EXPECT_EQ(ea[i].machine, eb[i].machine);
    EXPECT_DOUBLE_EQ(ea[i].time, eb[i].time);
  }
}

TEST(FaultInjector, PerMachineStreamsAreIndependent) {
  // Growing the cluster must not reshuffle the event timelines of the
  // machines that were already there (per-machine RNG substreams).
  FaultInjectorOptions fopt;
  fopt.machine_mtbf_hours = 1.0;
  fopt.straggler_rate_per_hour = 1.0;
  FaultInjector small(2, fopt);
  FaultInjector big(5, fopt);
  auto events_for = [](std::vector<FaultEvent> all, MachineId m) {
    std::vector<FaultEvent> out;
    for (const FaultEvent& e : all) {
      if (e.machine == m) out.push_back(e);
    }
    return out;
  };
  const auto all_small = small.pop_until(24 * 3600.0);
  const auto all_big = big.pop_until(24 * 3600.0);
  for (MachineId m = 0; m < 2; ++m) {
    const auto es = events_for(all_small, m);
    const auto eb = events_for(all_big, m);
    ASSERT_EQ(es.size(), eb.size()) << "machine " << m;
    ASSERT_FALSE(es.empty()) << "machine " << m;
    for (size_t i = 0; i < es.size(); ++i) {
      EXPECT_EQ(es[i].kind, eb[i].kind);
      EXPECT_DOUBLE_EQ(es[i].time, eb[i].time);
    }
  }
}

TEST(FaultInjector, CrashClosesOpenStragglerWindow) {
  FaultInjectorOptions fopt;
  fopt.machine_mtbf_hours = 0.2;
  fopt.straggler_rate_per_hour = 20.0;
  fopt.straggler_duration_s = 3600;
  FaultInjector inj(1, fopt);
  bool straggling = false;
  for (const FaultEvent& e : inj.pop_until(72 * 3600.0)) {
    switch (e.kind) {
      case FaultEvent::Kind::kStragglerStart:
        EXPECT_FALSE(straggling);
        straggling = true;
        for (double f : e.slowdown) {
          EXPECT_GE(f, 1.0);
          EXPECT_LE(f, fopt.straggler_severity);
        }
        break;
      case FaultEvent::Kind::kStragglerEnd:
        EXPECT_TRUE(straggling);
        straggling = false;
        break;
      case FaultEvent::Kind::kMachineDown:
        // The window must already have been closed (End emitted first).
        EXPECT_FALSE(straggling);
        break;
      case FaultEvent::Kind::kMachineUp:
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// WorkerMonitor

TEST(WorkerMonitor, BlacklistKicksInAfterThreshold) {
  WorkerMonitorOptions mopt;
  mopt.blacklist_after = 2;
  mopt.probation_s = 100;
  WorkerMonitor mon(2, mopt);

  // First failure/recovery cycle: below the threshold, rejoin at once.
  mon.on_failure(0, 10);
  EXPECT_EQ(mon.health(0), MachineHealth::kFailed);
  EXPECT_FALSE(mon.schedulable(0));
  mon.on_recovery(0, 20);
  EXPECT_EQ(mon.health(0), MachineHealth::kHealthy);
  EXPECT_TRUE(mon.schedulable(0));

  // Second failure reaches the threshold: recovery goes to probation.
  mon.on_failure(0, 30);
  mon.on_recovery(0, 40);
  EXPECT_EQ(mon.health(0), MachineHealth::kProbation);
  EXPECT_FALSE(mon.schedulable(0));
  EXPECT_DOUBLE_EQ(mon.next_probation_end(), 140.0);
  EXPECT_EQ(mon.schedulable_machines(), 1);  // machine 1 untouched

  // Surviving the window promotes it and clears the strike counter.
  EXPECT_TRUE(mon.end_probation(139.0).empty());
  const auto promoted = mon.end_probation(140.0);
  ASSERT_EQ(promoted.size(), 1u);
  EXPECT_EQ(promoted[0], 0);
  EXPECT_EQ(mon.health(0), MachineHealth::kHealthy);
  EXPECT_EQ(mon.failures(0), 0);
  EXPECT_EQ(mon.total_failures(), 2);

  // Crashes during probation do not reset the deadline or add strikes —
  // otherwise a machine with MTBF below the window is exiled forever.
  mon.on_failure(1, 0);
  mon.on_recovery(1, 1);
  mon.on_failure(1, 2);
  mon.on_recovery(1, 3);  // 2 strikes -> probation until 103
  ASSERT_EQ(mon.health(1), MachineHealth::kProbation);
  mon.on_failure(1, 50);  // crash while blacklisted
  EXPECT_EQ(mon.failures(1), 2);
  mon.on_recovery(1, 60);
  EXPECT_EQ(mon.health(1), MachineHealth::kProbation);
  EXPECT_DOUBLE_EQ(mon.next_probation_end(), 103.0);  // deadline unchanged
  mon.on_failure(1, 80);
  mon.on_recovery(1, 200);  // came back after the deadline: exile served
  EXPECT_EQ(mon.health(1), MachineHealth::kHealthy);
  EXPECT_EQ(mon.failures(1), 0);

  // Straggler windows only toggle healthy <-> degraded.
  mon.on_straggler(1, true);
  EXPECT_EQ(mon.health(1), MachineHealth::kDegraded);
  EXPECT_TRUE(mon.schedulable(1));
  mon.on_straggler(1, false);
  EXPECT_EQ(mon.health(1), MachineHealth::kHealthy);
}

// ---------------------------------------------------------------------------
// Cluster pool membership

TEST(Cluster, MachineAvailabilityShrinksAndRestoresPool) {
  Cluster cluster(ClusterSpec{2, 4});
  EXPECT_EQ(cluster.available_machines(), 2);
  EXPECT_EQ(cluster.available_gpus(), 8);

  ASSERT_TRUE(cluster.allocate(/*owner=*/7, 2).size() > 0);
  cluster.set_machine_available(0, false);
  cluster.set_machine_available(1, false);
  EXPECT_EQ(cluster.available_machines(), 0);
  EXPECT_EQ(cluster.available_gpus(), 0);
  EXPECT_EQ(cluster.free_gpus(), 0);
  EXPECT_FALSE(cluster.can_allocate(1));

  // Releasing onto a crashed machine must not resurrect capacity.
  cluster.release(7);
  EXPECT_EQ(cluster.free_gpus(), 0);

  cluster.set_machine_available(0, true);
  cluster.set_machine_available(1, true);
  EXPECT_EQ(cluster.available_machines(), 2);
  EXPECT_EQ(cluster.free_gpus(), 8);
  EXPECT_TRUE(cluster.can_allocate(8));
}

// ---------------------------------------------------------------------------
// Simulator integration

TEST(SimFaults, PerJobMtbfRequeuesAndFinishesEverything) {
  const Trace t = complementary_trace(2);
  SrsfScheduler srsf;
  SimOptions opt = small_cluster(1, 2);
  opt.durations_known = true;
  opt.mtbf_hours = 0.05;  // ~180 s between faults per running job
  const SimResult r = run_simulation(t, srsf, opt);
  EXPECT_EQ(r.finished_jobs, static_cast<int>(t.jobs.size()));
  EXPECT_EQ(r.unfinished_jobs, 0);
  EXPECT_GT(r.faults, 0);

  // The same trace without faults finishes no later on average.
  SrsfScheduler clean;
  SimOptions opt0 = opt;
  opt0.mtbf_hours = 0;
  const SimResult r0 = run_simulation(t, clean, opt0);
  EXPECT_LE(r0.avg_jct, r.avg_jct);
  EXPECT_EQ(r0.faults, 0);
}

TEST(SimFaults, MachineCrashEvictsRequeuesAndRecovers) {
  const Trace t = complementary_trace(3);
  SrsfScheduler srsf;
  SimOptions opt = small_cluster(2, 2);
  opt.durations_known = true;
  opt.machine_faults.machine_mtbf_hours = 0.1;   // ~360 s
  opt.machine_faults.machine_mttr_hours = 0.05;  // ~180 s
  const SimResult r = run_simulation(t, srsf, opt);
  EXPECT_EQ(r.finished_jobs, static_cast<int>(t.jobs.size()));
  EXPECT_EQ(r.unfinished_jobs, 0);
  EXPECT_GT(r.machine_failures, 0);
  EXPECT_GT(r.evictions, 0);
}

TEST(SimFaults, StragglersInflateResidentStageTime) {
  const Trace t = complementary_trace(2);
  SrsfScheduler srsf;
  SimOptions opt = small_cluster(2, 2);
  opt.durations_known = true;
  opt.machine_faults.straggler_rate_per_hour = 30.0;
  opt.machine_faults.straggler_duration_s = 600;
  opt.machine_faults.straggler_severity = 3.0;
  const SimResult r = run_simulation(t, srsf, opt);
  EXPECT_EQ(r.finished_jobs, static_cast<int>(t.jobs.size()));
  EXPECT_GT(r.straggler_seconds, 0);

  SrsfScheduler clean;
  SimOptions opt0 = opt;
  opt0.machine_faults = FaultInjectorOptions{};
  const SimResult r0 = run_simulation(t, clean, opt0);
  EXPECT_DOUBLE_EQ(r0.straggler_seconds, 0);
  EXPECT_LE(r0.avg_jct, r.avg_jct);
}

TEST(SimFaults, GroupSurvivorsContinueDegraded) {
  // Four complementary jobs interleave on one GPU under Muri; a per-job
  // fault kills one member mid-round and the survivors must keep running
  // as a re-planned degraded group instead of stalling.
  const Trace t = complementary_trace(1);
  MuriOptions mopt;
  mopt.durations_known = true;
  MuriScheduler muri(mopt);
  SimOptions opt = small_cluster(1, 1);
  opt.durations_known = true;
  opt.mtbf_hours = 0.05;
  const SimResult r = run_simulation(t, muri, opt);
  EXPECT_EQ(r.finished_jobs, 4);
  EXPECT_GT(r.faults, 0);
  EXPECT_GT(r.degraded_group_seconds, 0);
}

TEST(SimFaults, ZeroKnobRunMatchesFaultFreeRunExactly) {
  // All fault machinery compiled in but switched off must leave every
  // metric bit-identical to a run of the pre-fault configuration.
  const Trace t = complementary_trace(2);
  auto run = [&t](const SimOptions& opt) {
    SrsfScheduler s;
    return run_simulation(t, s, opt);
  };
  SimOptions base = small_cluster(2, 2);
  base.durations_known = true;
  SimOptions wired = base;
  wired.monitor.blacklist_after = 1;  // policy knobs alone must not matter
  wired.monitor.probation_s = 10;
  wired.machine_faults.seed = 99;
  const SimResult a = run(base);
  const SimResult b = run(wired);
  EXPECT_EQ(a.avg_jct, b.avg_jct);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.p99_jct, b.p99_jct);
  EXPECT_EQ(b.machine_failures, 0);
  EXPECT_EQ(b.evictions, 0);
  EXPECT_EQ(b.straggler_seconds, 0);
  EXPECT_EQ(b.degraded_group_seconds, 0);
}

// ---------------------------------------------------------------------------
// Live executor

TEST(ExecFaults, KilledMemberDropsFromBarrierWithoutDeadlock) {
  using runtime::ExecJobSpec;
  using runtime::ExecOptions;
  std::vector<ExecJobSpec> specs(3);
  specs[0] = {"victim", {0.5, 0.5, 0.5, 0.5}, 0, /*kill_after=*/0.05};
  specs[1] = {"survivor-a", {0.5, 0.5, 0.5, 0.5}, 1};
  specs[2] = {"survivor-b", {0.5, 0.5, 0.5, 0.5}, 2};
  ExecOptions opt;
  opt.time_scale = 0.01;
  opt.run_for = 0.4;
  opt.coordinate = true;

  // Run on a helper thread so a barrier deadlock fails the test instead of
  // hanging the suite.
  auto fut = std::async(std::launch::async,
                        [&] { return run_group(specs, opt); });
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(20)),
            std::future_status::ready)
      << "run_group deadlocked after mid-run thread death";
  const auto result = fut.get();
  ASSERT_EQ(result.jobs.size(), 3u);
  EXPECT_EQ(result.killed_jobs, 1);
  EXPECT_FALSE(result.jobs[0].completed);
  // Survivors keep rotating after the victim drops out.
  for (size_t i = 1; i < 3; ++i) {
    EXPECT_TRUE(result.jobs[i].completed) << result.jobs[i].name;
    EXPECT_GT(result.jobs[i].iterations, 0) << result.jobs[i].name;
  }
}

TEST(ExecFaults, WholeGroupKilledStillReturns) {
  using runtime::ExecJobSpec;
  using runtime::ExecOptions;
  std::vector<ExecJobSpec> specs(2);
  specs[0] = {"a", {0.5, 0.5, 0.5, 0.5}, 0, 0.03};
  specs[1] = {"b", {0.5, 0.5, 0.5, 0.5}, 1, 0.05};
  ExecOptions opt;
  opt.time_scale = 0.01;
  opt.run_for = 0.5;
  opt.coordinate = true;
  auto fut = std::async(std::launch::async,
                        [&] { return run_group(specs, opt); });
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(20)),
            std::future_status::ready);
  const auto result = fut.get();
  EXPECT_EQ(result.killed_jobs, 2);
}

}  // namespace
}  // namespace muri
