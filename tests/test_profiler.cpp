#include <gtest/gtest.h>

#include "profiler/profiler.h"

namespace muri {
namespace {

Job make_job(ModelKind m, int gpus) {
  Job j;
  j.id = 0;
  j.model = m;
  j.num_gpus = gpus;
  j.iterations = 1000;
  j.profile = model_profile(m, gpus);
  return j;
}

TEST(Profiler, NoNoiseReturnsTruthAboveThreshold) {
  ResourceProfiler::Options opt;
  opt.noise = 0;
  opt.zero_threshold = 0;
  ResourceProfiler profiler(opt);
  const Job j = make_job(ModelKind::kVgg16, 1);
  const IterationProfile p = profiler.profile(j);
  for (int r = 0; r < kNumResources; ++r) {
    EXPECT_DOUBLE_EQ(p.stage_time[static_cast<size_t>(r)],
                     j.profile.stage_time[static_cast<size_t>(r)]);
  }
}

TEST(Profiler, ThresholdZeroesTinyStages) {
  ResourceProfiler::Options opt;
  opt.noise = 0;
  opt.zero_threshold = 0.005;
  ResourceProfiler profiler(opt);
  // GPT-2 has storage/cpu fractions of ~0.1% — below the 0.5% threshold.
  const Job j = make_job(ModelKind::kGpt2, 1);
  const IterationProfile p = profiler.profile(j);
  EXPECT_DOUBLE_EQ(p.stage_time[static_cast<size_t>(Resource::kStorage)], 0.0);
  EXPECT_DOUBLE_EQ(p.stage_time[static_cast<size_t>(Resource::kCpu)], 0.0);
  EXPECT_GT(p.stage_time[static_cast<size_t>(Resource::kGpu)], 0.0);
}

TEST(Profiler, CacheAvoidsRepeatSessions) {
  ResourceProfiler profiler;  // defaults: cache on
  Job j = make_job(ModelKind::kBert, 2);
  profiler.profile(j);
  EXPECT_EQ(profiler.sessions(), 1);
  j.id = 42;  // different job, same model+gpus
  profiler.profile(j);
  EXPECT_EQ(profiler.sessions(), 1);
  // Different GPU count is a different profile.
  j.num_gpus = 4;
  j.profile = model_profile(j.model, 4);
  profiler.profile(j);
  EXPECT_EQ(profiler.sessions(), 2);
}

TEST(Profiler, CacheDisabledReprofilesEachCall) {
  ResourceProfiler::Options opt;
  opt.cache_by_model = false;
  ResourceProfiler profiler(opt);
  const Job j = make_job(ModelKind::kBert, 2);
  profiler.profile(j);
  profiler.profile(j);
  EXPECT_EQ(profiler.sessions(), 2);
}

TEST(Profiler, ClearCacheForcesNewSession) {
  ResourceProfiler profiler;
  const Job j = make_job(ModelKind::kA2c, 1);
  profiler.profile(j);
  profiler.clear_cache();
  profiler.profile(j);
  EXPECT_EQ(profiler.sessions(), 2);
}

TEST(Profiler, NoiseBoundsRespected) {
  ResourceProfiler::Options opt;
  opt.noise = 0.5;
  opt.cache_by_model = false;
  opt.zero_threshold = 0;
  opt.seed = 3;
  ResourceProfiler profiler(opt);
  const Job j = make_job(ModelKind::kVgg19, 1);
  for (int trial = 0; trial < 50; ++trial) {
    const IterationProfile p = profiler.profile(j);
    for (int r = 0; r < kNumResources; ++r) {
      const Duration truth = j.profile.stage_time[static_cast<size_t>(r)];
      const Duration measured = p.stage_time[static_cast<size_t>(r)];
      EXPECT_GE(measured, truth * 0.5 - 1e-12);
      EXPECT_LE(measured, truth * 1.5 + 1e-12);
    }
  }
}

TEST(Profiler, NoiseActuallyPerturbs) {
  ResourceProfiler::Options opt;
  opt.noise = 0.5;
  opt.cache_by_model = false;
  ResourceProfiler profiler(opt);
  const Job j = make_job(ModelKind::kVgg19, 1);
  const IterationProfile a = profiler.profile(j);
  const IterationProfile b = profiler.profile(j);
  EXPECT_NE(a.stage_time[static_cast<size_t>(Resource::kNetwork)],
            b.stage_time[static_cast<size_t>(Resource::kNetwork)]);
}

TEST(Profiler, ProfilingTimeAccumulates) {
  ResourceProfiler::Options opt;
  opt.dry_run_iterations = 10;
  ResourceProfiler profiler(opt);
  const Job j = make_job(ModelKind::kResNet18, 1);
  profiler.profile(j);
  EXPECT_NEAR(profiler.profiling_time(), 10 * j.profile.iteration_time(),
              1e-9);
}

TEST(Profiler, DeterministicAcrossInstances) {
  ResourceProfiler::Options opt;
  opt.noise = 0.3;
  opt.cache_by_model = false;
  opt.seed = 77;
  ResourceProfiler p1(opt), p2(opt);
  const Job j = make_job(ModelKind::kDqn, 1);
  const IterationProfile a = p1.profile(j);
  const IterationProfile b = p2.profile(j);
  for (int r = 0; r < kNumResources; ++r) {
    EXPECT_DOUBLE_EQ(a.stage_time[static_cast<size_t>(r)],
                     b.stage_time[static_cast<size_t>(r)]);
  }
}

}  // namespace
}  // namespace muri
