// Decision provenance (src/obs/provenance): the DecisionLog record
// format, the JSONL parser/validator, the explain queries, and the
// instrumentation contract — attaching a log never changes a plan or a
// SimResult, and fixed-seed logs are byte-identical across runs and
// thread counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "job/model.h"
#include "obs/provenance.h"
#include "runtime/executor.h"
#include "scheduler/baselines.h"
#include "scheduler/muri.h"
#include "sim/simulator.h"

namespace muri {
namespace {

using obs::DecisionLog;
using obs::DecisionRecord;

// ---------------------------------------------------------------------------
// DecisionLog mechanics: record bytes, rounds, dump shape.

TEST(DecisionLog, EmitsOneJsonObjectPerLine) {
  DecisionLog log;
  EXPECT_EQ(log.current_round(), 0);
  EXPECT_EQ(log.begin_round(), 1);
  log.entry("round_start")
      .str("scheduler", "Muri-L")
      .str("policy", "2D-LAS")
      .integer("queue", 3)
      .integer("capacity", 8);
  log.entry("group")
      .ids("jobs", {4, 7})
      .integer("gpus", 2)
      .str("mode", "interleaved")
      .num("gamma", 0.5)
      .raw("admitted", "true");
  EXPECT_EQ(log.records(), 2);
  EXPECT_EQ(log.jsonl(),
            "{\"type\":\"round_start\",\"round\":1,\"scheduler\":\"Muri-L\","
            "\"policy\":\"2D-LAS\",\"queue\":3,\"capacity\":8}\n"
            "{\"type\":\"group\",\"round\":1,\"jobs\":[4,7],\"gpus\":2,"
            "\"mode\":\"interleaved\",\"gamma\":0.5,\"admitted\":true}\n");
  EXPECT_EQ(log.begin_round(), 2);
  log.entry("round_end").integer("groups", 0);
  EXPECT_NE(log.jsonl().find("{\"type\":\"round_end\",\"round\":2"),
            std::string::npos);
  log.clear();
  EXPECT_EQ(log.records(), 0);
  EXPECT_EQ(log.current_round(), 0);
}

TEST(DecisionLog, NumberFormattingIsByteStable) {
  std::string out;
  obs::append_json_double(out, 3.0);
  out += ' ';
  obs::append_json_double(out, -17.0);
  out += ' ';
  obs::append_json_double(out, 0.5);
  EXPECT_EQ(out, "3 -17 0.5");
  // Non-representable decimals round-trip through %.17g identically on
  // every run — the property byte-stability rests on.
  std::string a, b;
  obs::append_json_double(a, 0.1 + 0.2);
  obs::append_json_double(b, 0.1 + 0.2);
  EXPECT_EQ(a, b);
}

TEST(DecisionLog, EscapesStrings) {
  DecisionLog log;
  log.begin_round();
  log.entry("deferred").ids("jobs", {1}).str("reason", "a\"b\\c\nd");
  EXPECT_NE(log.jsonl().find("\"reason\":\"a\\\"b\\\\c\\nd\""),
            std::string::npos);
  EXPECT_TRUE(obs::validate_decision_log(log.jsonl()));
}

// ---------------------------------------------------------------------------
// Parse + validate.

TEST(DecisionLog, ValidatorAcceptsItsOwnOutputAndRejectsGarbage) {
  DecisionLog log;
  log.begin_round();
  log.entry("placement")
      .num("t", 360)
      .ids("jobs", {0, 1})
      .integer("gpus", 2)
      .str("mode", "interleaved")
      .ints("machines", {0})
      .integer("owner", 0);
  std::string error;
  EXPECT_TRUE(obs::validate_decision_log(log.jsonl(), &error)) << error;

  EXPECT_FALSE(obs::validate_decision_log("{not json}\n", &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);

  // Well-formed JSON, wrong shape: missing "round".
  EXPECT_FALSE(
      obs::validate_decision_log("{\"type\":\"placement\"}\n", &error));
  EXPECT_NE(error.find("round"), std::string::npos);

  // Known type missing a required field.
  EXPECT_FALSE(obs::validate_decision_log(
      "{\"type\":\"group\",\"round\":1,\"jobs\":[1]}\n", &error));
  EXPECT_NE(error.find("group"), std::string::npos);

  // Unknown types are forward-compatible.
  EXPECT_TRUE(obs::validate_decision_log(
      "{\"type\":\"future_thing\",\"round\":2,\"extra\":[1,2]}\n", &error))
      << error;
}

TEST(DecisionLog, ParserKeepsRawLinesAndSkipsBlanks) {
  std::vector<DecisionRecord> records;
  const std::string dump =
      "{\"type\":\"round_end\",\"round\":1,\"groups\":0,\"admitted\":0,"
      "\"rejected\":0}\n\n"
      "{\"type\":\"fault\",\"round\":1,\"t\":5,\"job\":3,\"reason\":\"x\"}\n";
  ASSERT_TRUE(obs::parse_decision_log(dump, records));
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].raw,
            "{\"type\":\"fault\",\"round\":1,\"t\":5,\"job\":3,"
            "\"reason\":\"x\"}");
  EXPECT_EQ(records[1].value.at("job").number, 3);
}

// ---------------------------------------------------------------------------
// Torn-tail tolerance: a crashed writer leaves a half-written final line;
// opting in via `tail_warning` drops it with a diagnostic instead of
// failing the whole dump. Corruption anywhere else still fails.

TEST(DecisionLog, ParserToleratesATornFinalLine) {
  const std::string good =
      "{\"type\":\"round_end\",\"round\":1,\"groups\":0,\"admitted\":0,"
      "\"rejected\":0}\n";
  const std::string dump = good + "{\"type\":\"fault\",\"round\":1,\"t\":";

  // Strict mode (no tail_warning): the torn line is an error.
  std::vector<DecisionRecord> records;
  std::string error;
  EXPECT_FALSE(obs::parse_decision_log(dump, records, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos);

  // Tolerant mode: valid prefix survives, warning carries the byte
  // offset where it ends.
  records.clear();
  std::string tail_warning;
  ASSERT_TRUE(obs::parse_decision_log(dump, records, &error, &tail_warning));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_NE(tail_warning.find("byte offset " + std::to_string(good.size())),
            std::string::npos);
  EXPECT_NE(tail_warning.find("final line 2"), std::string::npos);

  // A clean dump clears the warning.
  ASSERT_TRUE(obs::parse_decision_log(good, records, &error, &tail_warning));
  EXPECT_TRUE(tail_warning.empty());

  // Garbage *before* a valid line is not a torn tail — still an error.
  records.clear();
  EXPECT_FALSE(obs::parse_decision_log("{oops\n" + good, records, &error,
                                       &tail_warning));
}

TEST(DecisionLog, ValidatorReportsASchemaBrokenFinalRecordAsWarning) {
  const std::string good =
      "{\"type\":\"round_end\",\"round\":1,\"groups\":0,\"admitted\":0,"
      "\"rejected\":0}\n";
  // Parses as JSON but is schema-broken (fault without job/reason) — the
  // shape a torn write can take when the line break survived.
  const std::string dump = good + "{\"type\":\"fault\",\"round\":1}\n";

  std::string error;
  EXPECT_FALSE(obs::validate_decision_log(dump, &error));
  EXPECT_NE(error.find("fault"), std::string::npos);

  std::string tail_warning;
  EXPECT_TRUE(obs::validate_decision_log(dump, &error, &tail_warning));
  EXPECT_NE(tail_warning.find("byte offset " + std::to_string(good.size())),
            std::string::npos);

  // The same broken record mid-file stays fatal even in tolerant mode.
  EXPECT_FALSE(obs::validate_decision_log(
      "{\"type\":\"fault\",\"round\":1}\n" + good, &error, &tail_warning));
}

// ---------------------------------------------------------------------------
// Scheduler instrumentation.

std::vector<JobView> contended_queue(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<JobView> queue;
  for (int i = 0; i < n; ++i) {
    JobView v;
    v.id = i;
    v.num_gpus = 1;
    v.submit_time = rng.uniform(0, 500);
    v.attained_service = rng.uniform(0, 2000);
    v.remaining_time = rng.uniform(10, 3000);
    v.measured = model_profile(
        kAllModels[static_cast<size_t>(rng.uniform_int(0, kNumModels - 1))],
        1);
    queue.push_back(v);
  }
  return queue;
}

bool same_plan(const std::vector<PlannedGroup>& a,
               const std::vector<PlannedGroup>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].members != b[i].members || a[i].num_gpus != b[i].num_gpus ||
        a[i].mode != b[i].mode || a[i].slots != b[i].slots ||
        a[i].offsets != b[i].offsets ||
        a[i].planned_period != b[i].planned_period) {
      return false;
    }
  }
  return true;
}

int count_type(const std::vector<DecisionRecord>& records,
               const std::string& type) {
  int n = 0;
  for (const auto& r : records) {
    if (r.value.at("type").string == type) ++n;
  }
  return n;
}

TEST(Provenance, MuriRoundLogsTheWholeStoryWithoutChangingThePlan) {
  const auto queue = contended_queue(24, 7);
  SchedulerContext ctx;
  ctx.total_gpus = 8;
  ctx.gpus_per_machine = 8;

  MuriScheduler bare{MuriOptions{}};
  const auto want = bare.schedule(queue, ctx);

  DecisionLog log;
  MuriOptions opt;
  opt.decisions = &log;
  MuriScheduler logged(opt);
  const auto got = logged.schedule(queue, ctx);
  EXPECT_TRUE(same_plan(want, got));

  std::string error;
  ASSERT_TRUE(obs::validate_decision_log(log.jsonl(), &error)) << error;
  std::vector<DecisionRecord> records;
  ASSERT_TRUE(obs::parse_decision_log(log.jsonl(), records));

  EXPECT_EQ(count_type(records, "round_start"), 1);
  EXPECT_EQ(count_type(records, "priority"), 1);
  EXPECT_GE(count_type(records, "bucket"), 1);
  EXPECT_GE(count_type(records, "match_round"), 1);
  EXPECT_GE(count_type(records, "group"), 1);
  EXPECT_EQ(count_type(records, "round_end"), 1);

  // The matching evidence must include rejected alternatives: a complete
  // γ graph over b candidates has ~b²/2 edges and at most b/2 can win.
  bool saw_rejected_edge = false;
  for (const auto& r : records) {
    if (r.value.at("type").string != "match_round") continue;
    EXPECT_GE(r.value.at("nodes").array.size(), 2u);
    if (r.value.at("edges").array.size() > r.value.at("matched").array.size()) {
      saw_rejected_edge = true;
    }
  }
  EXPECT_TRUE(saw_rejected_edge);

  // At least one admitted multi-member group, and its jobs appear in the
  // emitted plan as a group.
  bool saw_multi = false;
  for (const auto& r : records) {
    if (r.value.at("type").string != "group") continue;
    if (r.value.at("jobs").array.size() > 1 && r.value.at("admitted").boolean) {
      saw_multi = true;
      EXPECT_GT(r.value.at("gamma").number, 0.0);
    }
  }
  EXPECT_TRUE(saw_multi);
}

TEST(Provenance, MuriLogIsByteStableAcrossRunsAndThreadCounts) {
  const auto queue = contended_queue(40, 11);
  SchedulerContext ctx;
  ctx.total_gpus = 8;
  ctx.gpus_per_machine = 8;

  const auto dump_with_threads = [&](int threads) {
    DecisionLog log;
    MuriOptions opt;
    opt.num_threads = threads;
    opt.decisions = &log;
    MuriScheduler s(opt);
    s.schedule(queue, ctx);
    s.schedule(queue, ctx);  // two rounds: round ids must advance too
    return log.jsonl();
  };
  const std::string serial = dump_with_threads(1);
  EXPECT_EQ(serial, dump_with_threads(1));  // run-to-run
  EXPECT_EQ(serial, dump_with_threads(4));  // thread-count invariance
  EXPECT_NE(serial.find("\"round\":2"), std::string::npos);
}

TEST(Provenance, BaselineRoundsLogPriorityAndAdmission) {
  const auto queue = contended_queue(12, 3);
  SchedulerContext ctx;
  ctx.total_gpus = 4;
  ctx.gpus_per_machine = 4;

  DecisionLog log;
  FifoScheduler fifo;
  fifo.set_decision_log(&log);
  const auto plan = fifo.schedule(queue, ctx);
  EXPECT_FALSE(plan.empty());

  std::string error;
  ASSERT_TRUE(obs::validate_decision_log(log.jsonl(), &error)) << error;
  std::vector<DecisionRecord> records;
  ASSERT_TRUE(obs::parse_decision_log(log.jsonl(), records));
  EXPECT_EQ(count_type(records, "round_start"), 1);
  EXPECT_EQ(count_type(records, "priority"), 1);
  EXPECT_EQ(count_type(records, "round_end"), 1);
  // 12 one-GPU jobs on 4 GPUs: groups beyond the budget are rejections.
  int rejected = 0;
  for (const auto& r : records) {
    if (r.value.at("type").string == "group" &&
        !r.value.at("admitted").boolean) {
      ++rejected;
      EXPECT_EQ(r.value.at("reason").string, "gpu_budget");
    }
  }
  EXPECT_GT(rejected, 0);
  for (const auto& r : records) {
    if (r.value.at("type").string == "round_start") {
      EXPECT_EQ(r.value.at("policy").string, "FIFO");
    }
  }
}

// ---------------------------------------------------------------------------
// Simulator instrumentation.

Job sim_job(JobId id, ModelKind m, Time submit, double solo_secs) {
  Job j;
  j.id = id;
  j.model = m;
  j.num_gpus = 1;
  j.submit_time = submit;
  j.profile = model_profile(m, 1);
  j.iterations = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(solo_secs / j.profile.iteration_time()));
  return j;
}

Trace contended_trace() {
  Trace t;
  t.name = "provenance";
  for (int i = 0; i < 8; ++i) {
    t.jobs.push_back(sim_job(i, kAllModels[static_cast<size_t>(i) % 8],
                             i * 30.0, 900));
  }
  return t;
}

SimOptions tiny_cluster() {
  SimOptions opt;
  opt.cluster.num_machines = 1;
  opt.cluster.gpus_per_machine = 2;
  opt.schedule_interval = 60;
  opt.restart_penalty = 5;
  return opt;
}

TEST(Provenance, SimResultIsBitIdenticalWithAndWithoutLog) {
  const Trace t = contended_trace();

  MuriScheduler bare{MuriOptions{}};
  const SimResult want = run_simulation(t, bare, tiny_cluster());

  DecisionLog log;
  SimOptions opt = tiny_cluster();
  opt.decisions = &log;
  MuriScheduler logged{MuriOptions{}};
  const SimResult got = run_simulation(t, logged, opt);

  EXPECT_EQ(want.avg_jct, got.avg_jct);
  EXPECT_EQ(want.p99_jct, got.p99_jct);
  EXPECT_EQ(want.makespan, got.makespan);
  EXPECT_EQ(want.jcts, got.jcts);
  EXPECT_EQ(want.finished_jobs, got.finished_jobs);
  EXPECT_EQ(want.restarts, got.restarts);
  EXPECT_EQ(want.avg_group_gamma_predicted, got.avg_group_gamma_predicted);
  EXPECT_EQ(want.avg_group_gamma_realized, got.avg_group_gamma_realized);
  EXPECT_EQ(want.scheduler_invocations, got.scheduler_invocations);

  // The log itself carries both halves of the story: scheduler records
  // (the simulator attaches the sink to the scheduler) and outcome
  // records with simulated timestamps.
  std::string error;
  ASSERT_TRUE(obs::validate_decision_log(log.jsonl(), &error)) << error;
  std::vector<DecisionRecord> records;
  ASSERT_TRUE(obs::parse_decision_log(log.jsonl(), records));
  EXPECT_GE(count_type(records, "round_start"),
            static_cast<int>(want.scheduler_invocations));
  EXPECT_GE(count_type(records, "placement"), 1);
  EXPECT_GE(count_type(records, "restart") + count_type(records, "preempt"),
            static_cast<int>(want.restarts) > 0 ? 1 : 0);
}

TEST(Provenance, SimulatorLogIsByteStableAtFixedSeed) {
  const Trace t = contended_trace();
  const auto dump_once = [&] {
    DecisionLog log;
    SimOptions opt = tiny_cluster();
    opt.decisions = &log;
    MuriScheduler s{MuriOptions{}};
    run_simulation(t, s, opt);
    return log.jsonl();
  };
  EXPECT_EQ(dump_once(), dump_once());
}

// ---------------------------------------------------------------------------
// Explain queries.

TEST(Provenance, ExplainJobReconstructsGroupingEvidence) {
  const Trace t = contended_trace();
  DecisionLog log;
  SimOptions opt = tiny_cluster();
  opt.decisions = &log;
  MuriScheduler s{MuriOptions{}};
  run_simulation(t, s, opt);

  std::vector<DecisionRecord> records;
  ASSERT_TRUE(obs::parse_decision_log(log.jsonl(), records));

  // Pick a job from an admitted multi-member group, remembering the round
  // the grouping decision was made in.
  std::int64_t job = -1;
  std::int64_t grouped_round = -1;
  for (const auto& r : records) {
    if (r.value.at("type").string == "group" &&
        r.value.at("jobs").array.size() > 1 &&
        r.value.at("admitted").boolean) {
      job = static_cast<std::int64_t>(r.value.at("jobs").array[0].number);
      grouped_round = static_cast<std::int64_t>(r.value.at("round").number);
      break;
    }
  }
  ASSERT_GE(job, 0) << "no multi-member group formed";

  const std::string text = obs::explain_job_text(records, job);
  ASSERT_FALSE(text.empty());
  // The reconstruction names the round the job was grouped in, the score,
  // the winning merge with its γ, and a rejected alternative pairing.
  EXPECT_NE(text.find("round " + std::to_string(grouped_round) + ":"),
            std::string::npos);
  EXPECT_NE(text.find("queued at position"), std::string::npos);
  EXPECT_NE(text.find("merged"), std::string::npos);
  EXPECT_NE(text.find("rejected"), std::string::npos);
  EXPECT_NE(text.find("gamma="), std::string::npos);
  EXPECT_NE(text.find("group admitted"), std::string::npos);

  const std::string json = obs::explain_job_json(records, job);
  ASSERT_FALSE(json.empty());
  obs::JsonValue root;
  std::string err;
  ASSERT_TRUE(obs::parse_json(json, root, &err)) << err;
  EXPECT_EQ(static_cast<std::int64_t>(root.at("job").number), job);
  EXPECT_GE(root.at("rounds").array.size(), 1u);

  // Queries for ids the log never saw return "".
  EXPECT_TRUE(obs::explain_job_text(records, 424242).empty());
  EXPECT_TRUE(obs::explain_job_json(records, 424242).empty());
}

TEST(Provenance, ExplainRoundRendersEveryRecordOfTheRound) {
  const Trace t = contended_trace();
  DecisionLog log;
  SimOptions opt = tiny_cluster();
  opt.decisions = &log;
  MuriScheduler s{MuriOptions{}};
  run_simulation(t, s, opt);

  std::vector<DecisionRecord> records;
  ASSERT_TRUE(obs::parse_decision_log(log.jsonl(), records));

  const std::string text = obs::explain_round_text(records, 1);
  ASSERT_FALSE(text.empty());
  EXPECT_NE(text.find("round 1 decisions"), std::string::npos);
  EXPECT_NE(text.find("queue of"), std::string::npos);

  const std::string json = obs::explain_round_json(records, 1);
  obs::JsonValue root;
  std::string err;
  ASSERT_TRUE(obs::parse_json(json, root, &err)) << err;
  EXPECT_EQ(root.at("round").number, 1);
  std::int64_t in_round_1 = 0;
  for (const auto& r : records) {
    if (static_cast<std::int64_t>(r.value.at("round").number) == 1) {
      ++in_round_1;
    }
  }
  EXPECT_EQ(static_cast<std::int64_t>(root.at("records").array.size()),
            in_round_1);

  EXPECT_TRUE(obs::explain_round_text(records, 999999).empty());
  EXPECT_TRUE(obs::explain_round_json(records, 999999).empty());
}

// ---------------------------------------------------------------------------
// Executor instrumentation.

TEST(Provenance, ExecutorRecordsGroupWindows) {
  DecisionLog log;
  runtime::ExecOptions opt;
  opt.time_scale = 0.001;
  opt.run_for = 0.05;
  opt.decisions = &log;
  std::vector<runtime::ExecJobSpec> jobs(2);
  jobs[0].name = "a";
  jobs[0].profile = {0.5, 0.1, 0.1, 0.1};
  jobs[0].offset = 0;
  jobs[1].name = "b";
  jobs[1].profile = {0.1, 0.5, 0.1, 0.1};
  jobs[1].offset = 1;
  runtime::run_group(jobs, opt);

  std::string error;
  ASSERT_TRUE(obs::validate_decision_log(log.jsonl(), &error)) << error;
  std::vector<DecisionRecord> records;
  ASSERT_TRUE(obs::parse_decision_log(log.jsonl(), records));
  ASSERT_EQ(count_type(records, "exec_group"), 1);
  ASSERT_EQ(count_type(records, "exec_result"), 1);
  EXPECT_EQ(records[0].value.at("names").array[0].string, "a");
  EXPECT_EQ(records[0].value.at("mode").string, "coordinated");
  EXPECT_GE(records.back().value.at("gamma").number, 0.0);
}

}  // namespace
}  // namespace muri
