#include <gtest/gtest.h>

#include "interleave/efficiency.h"
#include "runtime/executor.h"

namespace muri {
namespace {

using runtime::ExecJobSpec;
using runtime::ExecOptions;

ExecOptions fast_options() {
  ExecOptions opt;
  // 1 simulated second -> 10 ms of wall work: stages land in the sleep
  // regime so grouped jobs overlap even on a single-core host.
  opt.time_scale = 0.01;
  opt.run_for = 0.4;
  return opt;
}

TEST(Runtime, SoloThroughputMatchesIterationTime) {
  ExecJobSpec job;
  job.name = "solo";
  job.profile = {0.5, 0.5, 1.0, 0.5};  // 2.5 simulated s/iter
  const auto r = run_solo(job, fast_options());
  EXPECT_GT(r.iterations, 0);
  // Throughput should be near 1/2.5 = 0.4 iterations per simulated second
  // (loose bounds: sleep jitter on a loaded single-core host).
  EXPECT_GT(r.sim_throughput, 0.22);
  EXPECT_LT(r.sim_throughput, 0.55);
}

TEST(Runtime, CoordinatedPairOverlapsComplementaryStages) {
  // A: CPU-heavy, B: GPU-heavy. Interleaved with offsets from the planner,
  // both should approach their solo throughput (γ = 1 pattern).
  std::vector<ResourceVector> profiles = {{0, 2.0, 1.0, 0}, {0, 1.0, 2.0, 0}};
  const InterleavePlan plan = plan_interleave(profiles);
  ASSERT_DOUBLE_EQ(plan.efficiency, 1.0);

  std::vector<ExecJobSpec> specs(2);
  specs[0] = {"cpuheavy", profiles[0], plan.offsets[0]};
  specs[1] = {"gpuheavy", profiles[1], plan.offsets[1]};
  ExecOptions opt = fast_options();
  opt.coordinate = true;
  opt.slots = plan.slots;  // rotate over the planner's axis
  const auto result = run_group(specs, opt);
  ASSERT_EQ(result.jobs.size(), 2u);

  // Solo period is 3 simulated seconds; the coordinated period should be
  // near 3 (perfect overlap), so each job's throughput ~1/3.
  for (const auto& jr : result.jobs) {
    EXPECT_GT(jr.iterations, 0);
    EXPECT_GT(jr.sim_throughput, 1.0 / 3.0 * 0.6) << jr.name;
  }
}

TEST(Runtime, UncoordinatedContentionSlowsIdenticalJobs) {
  // Two identical single-resource-heavy jobs fight over the same token:
  // total throughput halves per job.
  ExecJobSpec a{"a", {0, 0, 2.0, 0}, 0};
  ExecJobSpec b{"b", {0, 0, 2.0, 0}, 0};
  ExecOptions opt = fast_options();
  opt.coordinate = false;
  const auto shared = run_group({a, b}, opt);
  const auto solo = run_solo(a, opt);
  ASSERT_EQ(shared.jobs.size(), 2u);
  const double shared_tput =
      shared.jobs[0].sim_throughput + shared.jobs[1].sim_throughput;
  // Combined throughput cannot exceed the solo rate (one token).
  EXPECT_LE(shared_tput, solo.sim_throughput * 1.25);
}

TEST(Runtime, CoordinatedBeatsUncoordinatedForComplementaryPair) {
  std::vector<ResourceVector> profiles = {{0, 2.0, 1.0, 0}, {0, 1.0, 2.0, 0}};
  const InterleavePlan plan = plan_interleave(profiles);
  std::vector<ExecJobSpec> specs = {{"a", profiles[0], plan.offsets[0]},
                                    {"b", profiles[1], plan.offsets[1]}};
  ExecOptions opt = fast_options();
  opt.run_for = 0.5;

  opt.coordinate = true;
  opt.slots = plan.slots;
  const auto coord = run_group(specs, opt);
  opt.coordinate = false;
  opt.slots.clear();
  specs[0].offset = specs[1].offset = 0;
  const auto uncoord = run_group(specs, opt);

  const auto sum = [](const runtime::ExecResult& r) {
    double s = 0;
    for (const auto& j : r.jobs) s += j.sim_throughput;
    return s;
  };
  EXPECT_GT(sum(coord), sum(uncoord) * 0.95);
}

TEST(Runtime, AllMembersReportWallTime) {
  std::vector<ExecJobSpec> specs = {{"x", {0.2, 0.2, 0.2, 0.2}, 0},
                                    {"y", {0.2, 0.2, 0.2, 0.2}, 1},
                                    {"z", {0.2, 0.2, 0.2, 0.2}, 2}};
  ExecOptions opt = fast_options();
  const auto r = run_group(specs, opt);
  for (const auto& j : r.jobs) {
    EXPECT_GE(j.wall_seconds, opt.run_for * 0.5);
    EXPECT_GT(j.iterations, 0);
  }
}

}  // namespace
}  // namespace muri
