#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "matching/blossom.h"
#include "matching/brute_force.h"
#include "matching/graph.h"

namespace muri {
namespace {

DenseGraph make_graph(int n,
                      const std::vector<std::tuple<int, int, double>>& edges) {
  DenseGraph g(n);
  for (const auto& [u, v, w] : edges) g.set_weight(u, v, w);
  return g;
}

TEST(DenseGraph, SymmetricWeights) {
  DenseGraph g(3);
  g.set_weight(0, 2, 1.5);
  EXPECT_DOUBLE_EQ(g.weight(0, 2), 1.5);
  EXPECT_DOUBLE_EQ(g.weight(2, 0), 1.5);
  EXPECT_DOUBLE_EQ(g.weight(0, 1), 0.0);
  EXPECT_EQ(g.edge_count(), 1);
}

TEST(DenseGraph, SelfLoopIgnored) {
  DenseGraph g(2);
  g.set_weight(1, 1, 9.0);
  EXPECT_DOUBLE_EQ(g.weight(1, 1), 0.0);
}

TEST(DenseGraph, ValidateCatchesAsymmetry) {
  DenseGraph g(3);
  g.set_weight(0, 1, 1.0);
  Matching m;
  m.mate = {1, -1, -1};  // 0 matched to 1, but 1 not matched back
  EXPECT_FALSE(g.validate(m));
  m.mate = {1, 0, -1};
  EXPECT_TRUE(g.validate(m));
}

TEST(DenseGraph, ValidateCatchesNonEdgeMatch) {
  DenseGraph g(2);  // no edges
  Matching m;
  m.mate = {1, 0};
  EXPECT_FALSE(g.validate(m));
}

TEST(Blossom, EmptyAndSingleton) {
  DenseGraph g0(0);
  EXPECT_EQ(max_weight_matching(g0).pairs, 0);
  DenseGraph g1(1);
  const Matching m = max_weight_matching(g1);
  EXPECT_EQ(m.pairs, 0);
  EXPECT_EQ(m.mate[0], -1);
}

TEST(Blossom, SingleEdge) {
  auto g = make_graph(2, {{0, 1, 0.7}});
  const Matching m = max_weight_matching(g);
  EXPECT_TRUE(g.validate(m));
  EXPECT_EQ(m.pairs, 1);
  EXPECT_DOUBLE_EQ(m.weight, 0.7);
}

TEST(Blossom, PrefersHeavierOfTwoDisjointChoices) {
  // Path 0-1-2: can match (0,1) xor (1,2).
  auto g = make_graph(3, {{0, 1, 0.3}, {1, 2, 0.9}});
  const Matching m = max_weight_matching(g);
  EXPECT_TRUE(g.validate(m));
  EXPECT_DOUBLE_EQ(m.weight, 0.9);
  EXPECT_EQ(m.mate[1], 2);
  EXPECT_EQ(m.mate[0], -1);
}

TEST(Blossom, MaxWeightBeatsMaxCardinality) {
  // Path 0-1-2-3 with a heavy middle edge: matching only (1,2) with weight
  // 5 beats matching (0,1)+(2,3) with weight 2+2=4.
  auto g = make_graph(4, {{0, 1, 2.0}, {1, 2, 5.0}, {2, 3, 2.0}});
  const Matching m = max_weight_matching(g);
  EXPECT_TRUE(g.validate(m));
  EXPECT_DOUBLE_EQ(m.weight, 5.0);
  EXPECT_EQ(m.pairs, 1);
}

TEST(Blossom, OddCycleRequiresBlossomReasoning) {
  // Triangle with equal weights: only one edge can match.
  auto g = make_graph(3, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}});
  const Matching m = max_weight_matching(g);
  EXPECT_TRUE(g.validate(m));
  EXPECT_EQ(m.pairs, 1);
  EXPECT_DOUBLE_EQ(m.weight, 1.0);
}

TEST(Blossom, FiveCycleWithPendant) {
  // Classic blossom case: odd cycle 0-1-2-3-4-0 plus pendant 5 on node 0.
  auto g = make_graph(6, {{0, 1, 1.0},
                          {1, 2, 1.0},
                          {2, 3, 1.0},
                          {3, 4, 1.0},
                          {4, 0, 1.0},
                          {0, 5, 1.0}});
  const Matching m = max_weight_matching(g);
  EXPECT_TRUE(g.validate(m));
  EXPECT_EQ(m.pairs, 3);  // perfect matching exists: (0,5),(1,2),(3,4)
  EXPECT_EQ(m.mate[5], 0);
}

TEST(Blossom, PaperFigure5Example) {
  // Figure 5: jobs A,B,C,D; γ(A,B)=γ(C,D)=1, γ(A,C)=γ(B,D)=0.75 (plus the
  // other cross pairs). Plan 1 {A,B},{C,D} must win over plan 2.
  auto g = make_graph(4, {{0, 1, 1.0},
                          {2, 3, 1.0},
                          {0, 2, 0.75},
                          {1, 3, 0.75},
                          {0, 3, 0.75},
                          {1, 2, 0.75}});
  const Matching m = max_weight_matching(g);
  EXPECT_TRUE(g.validate(m));
  EXPECT_EQ(m.mate[0], 1);
  EXPECT_EQ(m.mate[2], 3);
  EXPECT_DOUBLE_EQ(m.weight, 2.0);
}

TEST(Greedy, CanBeSuboptimal) {
  // Greedy takes (1,2) with 5, blocking (0,1)+(2,3) worth 4+4=8.
  auto g = make_graph(4, {{0, 1, 4.0}, {1, 2, 5.0}, {2, 3, 4.0}});
  const Matching greedy = greedy_matching(g);
  const Matching optimal = max_weight_matching(g);
  EXPECT_TRUE(g.validate(greedy));
  EXPECT_TRUE(g.validate(optimal));
  EXPECT_DOUBLE_EQ(greedy.weight, 5.0);
  EXPECT_DOUBLE_EQ(optimal.weight, 8.0);
}

TEST(BruteForce, MatchesKnownOptimum) {
  auto g = make_graph(4, {{0, 1, 4.0}, {1, 2, 5.0}, {2, 3, 4.0}});
  const Matching m = brute_force_matching(g);
  EXPECT_TRUE(g.validate(m));
  EXPECT_DOUBLE_EQ(m.weight, 8.0);
}

// Property test: Blossom equals brute force on random graphs of varying
// size and density.
class BlossomRandomTest
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(BlossomRandomTest, AgreesWithBruteForce) {
  const auto [n, density, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
  DenseGraph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.bernoulli(density)) {
        g.set_weight(u, v, rng.uniform(0.01, 1.0));
      }
    }
  }
  const Matching blossom = max_weight_matching(g);
  const Matching exact = brute_force_matching(g);
  EXPECT_TRUE(g.validate(blossom));
  EXPECT_NEAR(blossom.weight, exact.weight, 1e-6)
      << "n=" << n << " density=" << density << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, BlossomRandomTest,
    ::testing::Combine(::testing::Values(2, 3, 5, 8, 11, 14),
                       ::testing::Values(0.2, 0.5, 0.9, 1.0),
                       ::testing::Range(0, 8)));

// Property test: integer-weight graphs where ties abound (stress for the
// dual updates) still match brute force.
class BlossomIntegerTest : public ::testing::TestWithParam<int> {};

TEST_P(BlossomIntegerTest, AgreesWithBruteForceOnSmallIntegerWeights) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const int n = 10;
  DenseGraph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.bernoulli(0.7)) {
        g.set_weight(u, v, static_cast<double>(rng.uniform_int(1, 4)));
      }
    }
  }
  const Matching blossom = max_weight_matching(g);
  const Matching exact = brute_force_matching(g);
  EXPECT_TRUE(g.validate(blossom));
  EXPECT_NEAR(blossom.weight, exact.weight, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(TieHeavy, BlossomIntegerTest,
                         ::testing::Range(0, 16));

// Greedy is never better than Blossom, and Blossom is never better than
// brute force (sanity ordering).
TEST(MatcherOrdering, GreedyLeBlossomEqExact) {
  Rng rng(424242);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 3 + static_cast<int>(rng.uniform_int(0, 9));
    DenseGraph g(n);
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        g.set_weight(u, v, rng.uniform(0.0, 1.0));
      }
    }
    const double wg = greedy_matching(g).weight;
    const double wb = max_weight_matching(g).weight;
    const double we = brute_force_matching(g).weight;
    EXPECT_LE(wg, wb + 1e-9);
    EXPECT_NEAR(wb, we, 1e-6);
  }
}

TEST(Blossom, LargeCompleteGraphTerminatesAndIsValid) {
  Rng rng(99);
  const int n = 60;
  DenseGraph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      g.set_weight(u, v, rng.uniform(0.5, 1.0));
    }
  }
  const Matching m = max_weight_matching(g);
  EXPECT_TRUE(g.validate(m));
  // Complete graph with positive weights: perfect matching.
  EXPECT_EQ(m.pairs, n / 2);
}

TEST(BruteForceGrouping, PartitionsIntoBestGroups) {
  // 4 items; pair weights via a closure; groups of up to 2 reduce to
  // matching.
  auto weight_of = [](const std::vector<int>& members) {
    if (members.size() != 2) return 0.0;
    static const double w[4][4] = {{0, 1.0, 0.75, 0.75},
                                   {1.0, 0, 0.75, 0.75},
                                   {0.75, 0.75, 0, 1.0},
                                   {0.75, 0.75, 1.0, 0}};
    return w[members[0]][members[1]];
  };
  const Grouping grouping = brute_force_grouping(4, 2, weight_of);
  EXPECT_DOUBLE_EQ(grouping.weight, 2.0);
}

TEST(BruteForceGrouping, UsesLargerGroupsWhenBetter) {
  // A single 3-group worth 10 beats any pairing (max pair weight 1).
  auto weight_of = [](const std::vector<int>& members) {
    if (members.size() == 3) return 10.0;
    if (members.size() == 2) return 1.0;
    return 0.0;
  };
  const Grouping grouping = brute_force_grouping(3, 3, weight_of);
  EXPECT_DOUBLE_EQ(grouping.weight, 10.0);
  bool has_triple = false;
  for (const auto& g : grouping.groups) {
    if (g.size() == 3) has_triple = true;
  }
  EXPECT_TRUE(has_triple);
}

}  // namespace
}  // namespace muri
