// Focused properties of Algorithm 1's multi-round grouping and the Muri
// scheduler's plan construction.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "common/rng.h"
#include "common/threadpool.h"
#include "interleave/efficiency.h"
#include "job/model.h"
#include "matching/brute_force.h"
#include "scheduler/muri.h"

namespace muri {
namespace {

std::vector<ResourceVector> zoo_profiles(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ResourceVector> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(model_profile(kAllModels[static_cast<size_t>(
                                    rng.uniform_int(0, kNumModels - 1))],
                                1)
                      .stage_time);
  }
  return out;
}

double grouping_gamma(const std::vector<ResourceVector>& profiles,
                      const std::vector<std::vector<int>>& groups) {
  double total = 0;
  for (const auto& g : groups) {
    if (g.size() < 2) continue;
    std::vector<ResourceVector> members;
    for (int idx : g) members.push_back(profiles[static_cast<size_t>(idx)]);
    total += plan_interleave(members).efficiency;
  }
  return total;
}

TEST(MultiRoundGrouping, PartitionIsExactCover) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const auto profiles = zoo_profiles(33, seed);
    for (int max_size : {2, 3, 4}) {
      const auto groups = multi_round_grouping(profiles, max_size);
      std::set<int> seen;
      for (const auto& g : groups) {
        EXPECT_LE(static_cast<int>(g.size()), max_size);
        EXPECT_GE(g.size(), 1u);
        for (int idx : g) {
          EXPECT_TRUE(seen.insert(idx).second);
          EXPECT_GE(idx, 0);
          EXPECT_LT(idx, 33);
        }
      }
      EXPECT_EQ(seen.size(), profiles.size());
    }
  }
}

TEST(MultiRoundGrouping, MostJobsEndUpInFullGroups) {
  // With an even, well-mixed candidate set, the heuristic should build
  // mostly max-size groups (that is what drives Muri's concurrency).
  const auto profiles = zoo_profiles(64, 9);
  const auto groups = multi_round_grouping(profiles, 4);
  int in_full = 0;
  for (const auto& g : groups) {
    if (g.size() == 4) in_full += 4;
  }
  EXPECT_GE(in_full, 48);  // at least 75% in 4-groups
}

TEST(MultiRoundGrouping, NeverWorseThanHalfOfOptimum) {
  // Against the NP-hard optimum on small instances, the heuristic's total
  // group-gamma stays within a factor-2 (empirically ~0.65-0.8).
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    const auto profiles = zoo_profiles(10, 100 + trial);
    const auto heuristic = multi_round_grouping(profiles, 4);
    const double hw = grouping_gamma(profiles, heuristic);
    const Grouping optimal =
        brute_force_grouping(10, 4, [&](const std::vector<int>& members) {
          std::vector<ResourceVector> ms;
          for (int idx : members) {
            ms.push_back(profiles[static_cast<size_t>(idx)]);
          }
          return plan_interleave(ms).efficiency;
        });
    EXPECT_GE(hw, 0.5 * optimal.weight - 1e-9) << "trial " << trial;
    EXPECT_LE(hw, optimal.weight + 1e-9);
  }
}

TEST(MultiRoundGrouping, UnionWeightBeatsNothingForComplementarySet) {
  // Four one-per-bottleneck jobs must end in a single 4-group whose gamma
  // beats any split into two pairs.
  std::vector<ResourceVector> profiles = {
      {0.6, 0.1, 0.05, 0.05},
      {0.05, 0.6, 0.1, 0.05},
      {0.05, 0.1, 0.6, 0.05},
      {0.05, 0.05, 0.1, 0.6},
  };
  const auto groups = multi_round_grouping(profiles, 4);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 4u);
}

TEST(MultiRoundGrouping, ThreadedGroupingIsBitIdenticalToSerial) {
  // The tentpole's acceptance gate: the parallel edge build and γ-cache
  // must not change the result by a single bit, for any pool size.
  for (std::uint64_t seed : {11u, 12u, 13u, 14u, 15u}) {
    for (int n : {7, 24, 48}) {
      const auto profiles = zoo_profiles(n, seed);
      for (int max_size : {2, 3, 4}) {
        const auto serial = multi_round_grouping(profiles, max_size);
        GroupingStats serial_stats;
        const auto serial2 =
            multi_round_grouping(profiles, max_size, nullptr, &serial_stats);
        EXPECT_EQ(serial, serial2);
        for (int workers : {1, 3, 7}) {  // 2-, 4-, 8-way concurrency
          ThreadPool pool(workers);
          GroupingStats stats;
          const auto threaded =
              multi_round_grouping(profiles, max_size, &pool, &stats);
          EXPECT_EQ(serial, threaded)
              << "n=" << n << " k=" << max_size << " seed=" << seed
              << " workers=" << workers;
          // Cache traffic is part of the deterministic contract too.
          EXPECT_EQ(stats.cache_hits, serial_stats.cache_hits);
          EXPECT_EQ(stats.cache_misses, serial_stats.cache_misses);
          EXPECT_EQ(stats.matchings_run, serial_stats.matchings_run);
        }
      }
    }
  }
}

std::vector<std::vector<int>> canonical_groups(
    std::vector<std::vector<int>> groups) {
  for (auto& g : groups) std::sort(g.begin(), g.end());
  std::sort(groups.begin(), groups.end());
  return groups;
}

TEST(MultiRoundGrouping, InsertionOrderDoesNotChangeGroups) {
  // Permuting the order jobs are presented in must not change which jobs
  // end up grouped together: edge weights travel with the jobs, not their
  // slots, so a unique-optimum matching lands on the same partition. Each
  // profile is scaled by a distinct factor so no two pairwise γs tie
  // (ties would make the optimum genuinely ambiguous).
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    auto profiles = zoo_profiles(24, seed);
    const int n = static_cast<int>(profiles.size());
    for (int i = 0; i < n; ++i) {
      for (auto& t : profiles[static_cast<size_t>(i)]) {
        t *= 1.0 + 0.013 * static_cast<double>(i);
      }
    }
    for (int max_size : {2, 4}) {
      const auto baseline =
          canonical_groups(multi_round_grouping(profiles, max_size));

      Rng rng(seed * 1000 + static_cast<std::uint64_t>(max_size));
      for (int trial = 0; trial < 3; ++trial) {
        // Fisher-Yates: shuffled slot i holds original job perm[i].
        std::vector<int> perm(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
        for (int i = n - 1; i > 0; --i) {
          std::swap(perm[static_cast<size_t>(i)],
                    perm[static_cast<size_t>(rng.uniform_int(0, i))]);
        }
        std::vector<ResourceVector> shuffled(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i) {
          shuffled[static_cast<size_t>(i)] =
              profiles[static_cast<size_t>(perm[static_cast<size_t>(i)])];
        }

        for (int workers : {0, 3}) {  // serial and 4-way pool
          std::unique_ptr<ThreadPool> pool;
          if (workers > 0) pool = std::make_unique<ThreadPool>(workers);
          auto groups =
              multi_round_grouping(shuffled, max_size, pool.get(), nullptr);
          for (auto& g : groups) {
            for (int& idx : g) idx = perm[static_cast<size_t>(idx)];
          }
          EXPECT_EQ(canonical_groups(std::move(groups)), baseline)
              << "seed=" << seed << " k=" << max_size << " trial=" << trial
              << " workers=" << workers;
        }
      }
    }
  }
}

TEST(MultiRoundGrouping, GammaCacheHitsOnRematchedSurvivors) {
  // One two-resource job and three zero ("pure compute-free") profiles:
  // the job pairs with one zero in round 1, and the two leftover zeros —
  // whose γ of 0 was folded into the cache in round 1 — meet again in
  // round 2 as an unchanged pair. That re-encounter must be a cache hit.
  std::vector<ResourceVector> profiles = {
      {0.5, 0.5, 0.0, 0.0},
      {0.0, 0.0, 0.0, 0.0},
      {0.0, 0.0, 0.0, 0.0},
      {0.0, 0.0, 0.0, 0.0},
  };
  GroupingStats stats;
  const auto groups = multi_round_grouping(profiles, 4, nullptr, &stats);
  EXPECT_GE(stats.cache_hits, 1);
  EXPECT_GT(stats.cache_misses, 0);
  std::set<int> seen;
  for (const auto& g : groups) seen.insert(g.begin(), g.end());
  EXPECT_EQ(seen.size(), profiles.size());
}

TEST(MuriPlan, InterleavedGroupsCarryFullSchedules) {
  MuriOptions opt;
  opt.durations_known = true;
  MuriScheduler muri(opt);
  std::vector<JobView> queue;
  for (int i = 0; i < 12; ++i) {
    JobView v;
    v.id = i;
    v.num_gpus = 1;
    v.remaining_time = 100 + i;
    v.measured = model_profile(kAllModels[static_cast<size_t>(i) % 8], 1);
    queue.push_back(v);
  }
  SchedulerContext ctx;
  ctx.total_gpus = 2;
  ctx.durations_known = true;
  const auto plan = muri.schedule(queue, ctx);
  bool saw_interleaved = false;
  for (const auto& g : plan) {
    if (g.mode != GroupMode::kInterleaved) continue;
    saw_interleaved = true;
    EXPECT_EQ(g.offsets.size(), g.members.size());
    EXPECT_GE(g.slots.size(), g.members.size());
    EXPECT_GT(g.planned_period, 0.0);
    std::set<Resource> distinct_slots(g.slots.begin(), g.slots.end());
    EXPECT_EQ(distinct_slots.size(), g.slots.size());
    std::set<int> distinct_offsets(g.offsets.begin(), g.offsets.end());
    EXPECT_EQ(distinct_offsets.size(), g.offsets.size());
  }
  EXPECT_TRUE(saw_interleaved);
}

TEST(MuriPlan, CandidateCapBoundsGroupedJobs) {
  MuriOptions opt;
  opt.durations_known = true;
  opt.candidate_cap = 8;
  MuriScheduler muri(opt);
  std::vector<JobView> queue;
  for (int i = 0; i < 40; ++i) {
    JobView v;
    v.id = i;
    v.num_gpus = 1;
    v.remaining_time = 50 + i;
    v.measured = model_profile(kAllModels[static_cast<size_t>(i) % 8], 1);
    queue.push_back(v);
  }
  SchedulerContext ctx;
  ctx.total_gpus = 2;
  ctx.durations_known = true;
  const auto plan = muri.schedule(queue, ctx);
  int grouped_jobs = 0;
  for (const auto& g : plan) {
    if (g.members.size() > 1) {
      grouped_jobs += static_cast<int>(g.members.size());
    }
  }
  EXPECT_LE(grouped_jobs, 8);
}

TEST(MuriPlan, AdmittedGpuBudgetRespectsCluster) {
  // The first groups in plan order (until the first unfit) must fit the
  // cluster budget thanks to budgeted admission.
  MuriOptions opt;
  MuriScheduler muri(opt);
  std::vector<JobView> queue;
  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    JobView v;
    v.id = i;
    v.num_gpus = 1 << rng.uniform_int(0, 2);  // 1/2/4
    v.attained_service = rng.uniform(0, 1000);
    v.measured = model_profile(kAllModels[static_cast<size_t>(i) % 8],
                               v.num_gpus);
    queue.push_back(v);
  }
  SchedulerContext ctx;
  ctx.total_gpus = 8;
  const auto plan = muri.schedule(queue, ctx);
  int budget_used = 0;
  for (const auto& g : plan) {
    if (budget_used + g.num_gpus > ctx.total_gpus) break;
    budget_used += g.num_gpus;
  }
  EXPECT_LE(budget_used, ctx.total_gpus);
  EXPECT_GE(budget_used, ctx.total_gpus / 2);  // not trivially empty
}

bool same_plan(const std::vector<PlannedGroup>& a,
               const std::vector<PlannedGroup>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].members != b[i].members) return false;
    if (a[i].num_gpus != b[i].num_gpus) return false;
    if (a[i].mode != b[i].mode) return false;
    if (a[i].slots != b[i].slots) return false;
    if (a[i].offsets != b[i].offsets) return false;
    if (a[i].planned_period != b[i].planned_period) return false;  // bitwise
  }
  return true;
}

std::vector<JobView> randomized_queue(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<JobView> queue;
  for (int i = 0; i < n; ++i) {
    JobView v;
    v.id = i;
    v.num_gpus = 1 << rng.uniform_int(0, 3);  // 1/2/4/8 → four buckets
    v.submit_time = rng.uniform(0, 500);
    v.attained_service = rng.uniform(0, 2000);
    v.remaining_time = rng.uniform(10, 3000);
    v.measured = model_profile(kAllModels[static_cast<size_t>(
                                   rng.uniform_int(0, kNumModels - 1))],
                               v.num_gpus);
    queue.push_back(v);
  }
  return queue;
}

TEST(MuriPlan, ThreadedSchedulesAreBitIdenticalToSerial) {
  // Full scheduler path on randomized traces: concurrent bucket grouping +
  // parallel graph build must reproduce the serial plan exactly, for both
  // Muri-S and Muri-L and across thread counts.
  for (std::uint64_t seed : {3u, 21u, 42u}) {
    for (bool known : {false, true}) {
      MuriOptions serial_opt;
      serial_opt.durations_known = known;
      serial_opt.num_threads = 1;
      MuriScheduler serial(serial_opt);

      const auto queue = randomized_queue(60, seed);
      SchedulerContext ctx;
      ctx.total_gpus = 16;
      ctx.gpus_per_machine = 8;
      ctx.durations_known = known;
      const auto want = serial.schedule(queue, ctx);

      for (int threads : {2, 4, 8}) {
        MuriOptions opt = serial_opt;
        opt.num_threads = threads;
        MuriScheduler muri(opt);
        const auto got = muri.schedule(queue, ctx);
        EXPECT_TRUE(same_plan(want, got))
            << "seed=" << seed << " known=" << known
            << " threads=" << threads;
        // Deterministic work accounting: the same matchings and the same
        // cache traffic as the serial round, just spread across threads.
        EXPECT_EQ(muri.last_round_stats().matchings_run,
                  serial.last_round_stats().matchings_run);
        EXPECT_EQ(muri.last_round_stats().cache_hits,
                  serial.last_round_stats().cache_hits);
        EXPECT_EQ(muri.last_round_stats().cache_misses,
                  serial.last_round_stats().cache_misses);
      }
    }
  }
}

TEST(MuriPlan, RoundStatsAccumulateAcrossCalls) {
  MuriOptions opt;
  opt.num_threads = 2;
  MuriScheduler muri(opt);
  SchedulerContext ctx;
  ctx.total_gpus = 8;
  const auto queue = randomized_queue(40, 9);
  muri.schedule(queue, ctx);
  const auto first = muri.cumulative_stats();
  EXPECT_GT(first.matchings_run, 0);
  EXPECT_GT(first.cache_misses, 0);
  muri.schedule(queue, ctx);
  EXPECT_EQ(muri.cumulative_stats().matchings_run, 2 * first.matchings_run);
  EXPECT_EQ(muri.matchings_run(), muri.cumulative_stats().matchings_run);
  EXPECT_GE(muri.last_round_stats().graph_build_seconds, 0.0);
  EXPECT_GE(muri.last_round_stats().matching_seconds, 0.0);
}

}  // namespace
}  // namespace muri
