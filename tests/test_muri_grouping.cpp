// Focused properties of Algorithm 1's multi-round grouping and the Muri
// scheduler's plan construction.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "interleave/efficiency.h"
#include "job/model.h"
#include "matching/brute_force.h"
#include "scheduler/muri.h"

namespace muri {
namespace {

std::vector<ResourceVector> zoo_profiles(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ResourceVector> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(model_profile(kAllModels[static_cast<size_t>(
                                    rng.uniform_int(0, kNumModels - 1))],
                                1)
                      .stage_time);
  }
  return out;
}

double grouping_gamma(const std::vector<ResourceVector>& profiles,
                      const std::vector<std::vector<int>>& groups) {
  double total = 0;
  for (const auto& g : groups) {
    if (g.size() < 2) continue;
    std::vector<ResourceVector> members;
    for (int idx : g) members.push_back(profiles[static_cast<size_t>(idx)]);
    total += plan_interleave(members).efficiency;
  }
  return total;
}

TEST(MultiRoundGrouping, PartitionIsExactCover) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const auto profiles = zoo_profiles(33, seed);
    for (int max_size : {2, 3, 4}) {
      const auto groups = multi_round_grouping(profiles, max_size);
      std::set<int> seen;
      for (const auto& g : groups) {
        EXPECT_LE(static_cast<int>(g.size()), max_size);
        EXPECT_GE(g.size(), 1u);
        for (int idx : g) {
          EXPECT_TRUE(seen.insert(idx).second);
          EXPECT_GE(idx, 0);
          EXPECT_LT(idx, 33);
        }
      }
      EXPECT_EQ(seen.size(), profiles.size());
    }
  }
}

TEST(MultiRoundGrouping, MostJobsEndUpInFullGroups) {
  // With an even, well-mixed candidate set, the heuristic should build
  // mostly max-size groups (that is what drives Muri's concurrency).
  const auto profiles = zoo_profiles(64, 9);
  const auto groups = multi_round_grouping(profiles, 4);
  int in_full = 0;
  for (const auto& g : groups) {
    if (g.size() == 4) in_full += 4;
  }
  EXPECT_GE(in_full, 48);  // at least 75% in 4-groups
}

TEST(MultiRoundGrouping, NeverWorseThanHalfOfOptimum) {
  // Against the NP-hard optimum on small instances, the heuristic's total
  // group-gamma stays within a factor-2 (empirically ~0.65-0.8).
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    const auto profiles = zoo_profiles(10, 100 + trial);
    const auto heuristic = multi_round_grouping(profiles, 4);
    const double hw = grouping_gamma(profiles, heuristic);
    const Grouping optimal =
        brute_force_grouping(10, 4, [&](const std::vector<int>& members) {
          std::vector<ResourceVector> ms;
          for (int idx : members) {
            ms.push_back(profiles[static_cast<size_t>(idx)]);
          }
          return plan_interleave(ms).efficiency;
        });
    EXPECT_GE(hw, 0.5 * optimal.weight - 1e-9) << "trial " << trial;
    EXPECT_LE(hw, optimal.weight + 1e-9);
  }
}

TEST(MultiRoundGrouping, UnionWeightBeatsNothingForComplementarySet) {
  // Four one-per-bottleneck jobs must end in a single 4-group whose gamma
  // beats any split into two pairs.
  std::vector<ResourceVector> profiles = {
      {0.6, 0.1, 0.05, 0.05},
      {0.05, 0.6, 0.1, 0.05},
      {0.05, 0.1, 0.6, 0.05},
      {0.05, 0.05, 0.1, 0.6},
  };
  const auto groups = multi_round_grouping(profiles, 4);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 4u);
}

TEST(MuriPlan, InterleavedGroupsCarryFullSchedules) {
  MuriOptions opt;
  opt.durations_known = true;
  MuriScheduler muri(opt);
  std::vector<JobView> queue;
  for (int i = 0; i < 12; ++i) {
    JobView v;
    v.id = i;
    v.num_gpus = 1;
    v.remaining_time = 100 + i;
    v.measured = model_profile(kAllModels[static_cast<size_t>(i) % 8], 1);
    queue.push_back(v);
  }
  SchedulerContext ctx;
  ctx.total_gpus = 2;
  ctx.durations_known = true;
  const auto plan = muri.schedule(queue, ctx);
  bool saw_interleaved = false;
  for (const auto& g : plan) {
    if (g.mode != GroupMode::kInterleaved) continue;
    saw_interleaved = true;
    EXPECT_EQ(g.offsets.size(), g.members.size());
    EXPECT_GE(g.slots.size(), g.members.size());
    EXPECT_GT(g.planned_period, 0.0);
    std::set<Resource> distinct_slots(g.slots.begin(), g.slots.end());
    EXPECT_EQ(distinct_slots.size(), g.slots.size());
    std::set<int> distinct_offsets(g.offsets.begin(), g.offsets.end());
    EXPECT_EQ(distinct_offsets.size(), g.offsets.size());
  }
  EXPECT_TRUE(saw_interleaved);
}

TEST(MuriPlan, CandidateCapBoundsGroupedJobs) {
  MuriOptions opt;
  opt.durations_known = true;
  opt.candidate_cap = 8;
  MuriScheduler muri(opt);
  std::vector<JobView> queue;
  for (int i = 0; i < 40; ++i) {
    JobView v;
    v.id = i;
    v.num_gpus = 1;
    v.remaining_time = 50 + i;
    v.measured = model_profile(kAllModels[static_cast<size_t>(i) % 8], 1);
    queue.push_back(v);
  }
  SchedulerContext ctx;
  ctx.total_gpus = 2;
  ctx.durations_known = true;
  const auto plan = muri.schedule(queue, ctx);
  int grouped_jobs = 0;
  for (const auto& g : plan) {
    if (g.members.size() > 1) {
      grouped_jobs += static_cast<int>(g.members.size());
    }
  }
  EXPECT_LE(grouped_jobs, 8);
}

TEST(MuriPlan, AdmittedGpuBudgetRespectsCluster) {
  // The first groups in plan order (until the first unfit) must fit the
  // cluster budget thanks to budgeted admission.
  MuriOptions opt;
  MuriScheduler muri(opt);
  std::vector<JobView> queue;
  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    JobView v;
    v.id = i;
    v.num_gpus = 1 << rng.uniform_int(0, 2);  // 1/2/4
    v.attained_service = rng.uniform(0, 1000);
    v.measured = model_profile(kAllModels[static_cast<size_t>(i) % 8],
                               v.num_gpus);
    queue.push_back(v);
  }
  SchedulerContext ctx;
  ctx.total_gpus = 8;
  const auto plan = muri.schedule(queue, ctx);
  int budget_used = 0;
  for (const auto& g : plan) {
    if (budget_used + g.num_gpus > ctx.total_gpus) break;
    budget_used += g.num_gpus;
  }
  EXPECT_LE(budget_used, ctx.total_gpus);
  EXPECT_GE(budget_used, ctx.total_gpus / 2);  // not trivially empty
}

}  // namespace
}  // namespace muri
