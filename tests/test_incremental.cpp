// Incremental scheduling rounds (matching/incremental): the maintained
// candidate graph must equal a from-scratch rebuild — edge set *and*
// weights, not just the matchings it induces — under arbitrary churn,
// and the incremental scheduler must emit bit-identical plans and
// DecisionLog bytes to the full rebuild at every thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "job/model.h"
#include "matching/incremental/incremental.h"
#include "obs/provenance.h"
#include "scheduler/muri.h"

namespace muri {
namespace {

ResourceVector random_profile(Rng& rng) {
  return model_profile(
             kAllModels[static_cast<size_t>(
                 rng.uniform_int(0, kNumModels - 1))],
             1)
      .stage_time;
}

struct Population {
  std::vector<JobId> ids;
  std::vector<ResourceVector> profiles;
  JobId next_id = 0;

  void add(Rng& rng, int count) {
    for (int i = 0; i < count; ++i) {
      ids.push_back(next_id++);
      profiles.push_back(random_profile(rng));
    }
  }
  void remove_random(Rng& rng, int count) {
    for (int i = 0; i < count && !ids.empty(); ++i) {
      const auto victim = static_cast<size_t>(
          rng.uniform_int(0, static_cast<int>(ids.size()) - 1));
      ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(victim));
      profiles.erase(profiles.begin() + static_cast<std::ptrdiff_t>(victim));
    }
  }
};

bool same_edges(const std::vector<MaskEdge>& a,
                const std::vector<MaskEdge>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].a != b[i].a || a[i].b != b[i].b) return false;
    if (a[i].score != b[i].score) return false;  // bitwise, on purpose
  }
  return true;
}

// The tentpole property: a maintained mask equals a from-scratch rebuild
// after every step of a randomized arrival/finish churn sequence — edge
// set plus weight equality, per-job neighbor lists included.
TEST(TopKMask, MatchesFromScratchUnderRandomChurn) {
  for (std::uint64_t seed : {7u, 19u, 101u}) {
    for (int k : {1, 3, 8}) {
      Rng rng(seed);
      Population pop;
      pop.add(rng, 40);
      TopKMask maintained(k);
      maintained.update(pop.ids, pop.profiles, nullptr);
      for (int step = 0; step < 60; ++step) {
        pop.remove_random(rng, rng.uniform_int(0, 6));
        pop.add(rng, rng.uniform_int(0, 6));
        IncrementalStats stats;
        maintained.update(pop.ids, pop.profiles, &stats);
        const TopKMask fresh =
            TopKMask::from_scratch(pop.ids, pop.profiles, k);
        ASSERT_TRUE(same_edges(maintained.edges(), fresh.edges()))
            << "seed=" << seed << " k=" << k << " step=" << step;
        for (JobId id : pop.ids) {
          ASSERT_TRUE(same_edges(maintained.neighbors(id),
                                 fresh.neighbors(id)))
              << "seed=" << seed << " k=" << k << " step=" << step
              << " job=" << id;
        }
      }
    }
  }
}

// Draining the population entirely and refilling must not strand stale
// neighbors (the all-removed, buffers-empty edge case).
TEST(TopKMask, SurvivesFullDrainAndRefill) {
  Rng rng(5);
  Population pop;
  pop.add(rng, 12);
  TopKMask m(4);
  m.update(pop.ids, pop.profiles, nullptr);
  pop.remove_random(rng, 12);
  m.update(pop.ids, pop.profiles, nullptr);
  EXPECT_EQ(m.size(), 0u);
  EXPECT_TRUE(m.edges().empty());
  pop.add(rng, 9);
  m.update(pop.ids, pop.profiles, nullptr);
  const TopKMask fresh = TopKMask::from_scratch(pop.ids, pop.profiles, 4);
  EXPECT_TRUE(same_edges(m.edges(), fresh.edges()));
}

// A job whose profile bits change must be treated as departed + arrived,
// never served stale scores.
TEST(TopKMask, ProfileChangeInvalidatesNeighbors) {
  Rng rng(11);
  Population pop;
  pop.add(rng, 20);
  TopKMask m(4);
  m.update(pop.ids, pop.profiles, nullptr);
  pop.profiles[3] = random_profile(rng);
  pop.profiles[3][0] += 0.125;  // guarantee different bits
  IncrementalStats stats;
  m.update(pop.ids, pop.profiles, &stats);
  EXPECT_GE(stats.dirty_jobs, 2);  // remove + add of the same id
  const TopKMask fresh = TopKMask::from_scratch(pop.ids, pop.profiles, 4);
  EXPECT_TRUE(same_edges(m.edges(), fresh.edges()));
}

TEST(SplitComponents, PartitionsWithinCapDeterministically) {
  Rng rng(23);
  Population pop;
  pop.add(rng, 50);
  const TopKMask mask = TopKMask::from_scratch(pop.ids, pop.profiles, 6);
  for (int cap : {2, 4, 16, 64}) {
    const auto comps = split_components(pop.ids, mask.edges(), cap);
    std::set<int> seen;
    int prev_min = -1;
    for (const auto& c : comps) {
      ASSERT_FALSE(c.empty());
      ASSERT_LE(static_cast<int>(c.size()), std::max(cap, 1));
      ASSERT_TRUE(std::is_sorted(c.begin(), c.end()));
      ASSERT_GT(c.front(), prev_min);  // ordered by min member index
      prev_min = c.front();
      for (int i : c) ASSERT_TRUE(seen.insert(i).second);
    }
    ASSERT_EQ(seen.size(), pop.ids.size());
    // Same inputs, same split — twice.
    const auto again = split_components(pop.ids, mask.edges(), cap);
    ASSERT_EQ(comps, again);
  }
}

TEST(PairGammaCache, ValidatesFullProfileBits) {
  Rng rng(3);
  const ResourceVector pa = random_profile(rng);
  const ResourceVector pb = random_profile(rng);
  PairGammaCache cache;
  cache.store(1, pa, 2, pb, 0.75, /*round=*/1);
  double g = 0;
  EXPECT_TRUE(cache.lookup(1, pa, 2, pb, &g));
  EXPECT_EQ(g, 0.75);
  // Entries are directional — γ evaluation is order-sensitive in its
  // floating-point reduction, so the reversed orientation must miss
  // rather than replay the wrong rounding.
  EXPECT_FALSE(cache.lookup(2, pb, 1, pa, &g));
  // Any single changed bit must miss — a hash-only key could collide
  // here and silently break bit-identity.
  ResourceVector pa2 = pa;
  pa2[2] += 1e-9;
  EXPECT_FALSE(cache.lookup(1, pa2, 2, pb, &g));
  // Aging drops untouched entries.
  cache.age(/*current_round=*/100, /*max_age=*/64);
  EXPECT_FALSE(cache.lookup(1, pa, 2, pb, &g));
}

TEST(ComponentResultCache, MissesWhenCaptureNowRequired) {
  Rng rng(9);
  ComponentResultCache cache;
  ComponentResultCache::CachedComponent e;
  e.ids = {4, 7};
  e.profiles = {random_profile(rng), random_profile(rng)};
  e.groups = {{0, 1}};
  e.has_capture = false;
  cache.store(e, /*round=*/1);
  EXPECT_NE(cache.lookup(e.ids, e.profiles, /*need_capture=*/false, 2),
            nullptr);
  // A DecisionLog attached mid-run must not inherit capture-less entries.
  EXPECT_EQ(cache.lookup(e.ids, e.profiles, /*need_capture=*/true, 2),
            nullptr);
  // Different profile bits miss even with identical ids.
  auto profiles2 = e.profiles;
  profiles2[1][3] += 1e-12;
  EXPECT_EQ(cache.lookup(e.ids, profiles2, /*need_capture=*/false, 2),
            nullptr);
}

// ---------------------------------------------------------------------
// End-to-end: the incremental scheduler against the full rebuild.

std::vector<JobView> make_queue(Rng& rng, JobId& next_id, int n) {
  std::vector<JobView> queue;
  for (int i = 0; i < n; ++i) {
    JobView v;
    v.id = next_id++;
    v.num_gpus = 1 << rng.uniform_int(0, 3);  // 1/2/4/8 → four buckets
    v.submit_time = rng.uniform(0, 500);
    v.attained_service = rng.uniform(0, 2000);
    v.remaining_time = rng.uniform(10, 3000);
    v.measured = model_profile(kAllModels[static_cast<size_t>(
                                   rng.uniform_int(0, kNumModels - 1))],
                               v.num_gpus);
    queue.push_back(v);
  }
  return queue;
}

void churn_queue(Rng& rng, JobId& next_id, std::vector<JobView>& queue) {
  const int removals = rng.uniform_int(0, 8);
  for (int i = 0; i < removals && !queue.empty(); ++i) {
    const auto victim = static_cast<size_t>(
        rng.uniform_int(0, static_cast<int>(queue.size()) - 1));
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(victim));
  }
  const auto fresh = make_queue(rng, next_id, rng.uniform_int(0, 8));
  queue.insert(queue.end(), fresh.begin(), fresh.end());
  // Attained service drifts for a random subset — priority reshuffles
  // reorder components between rounds and must not break equivalence.
  for (JobView& v : queue) {
    if (rng.uniform_int(0, 3) == 0) v.attained_service += rng.uniform(0, 50);
  }
}

bool same_plan(const std::vector<PlannedGroup>& a,
               const std::vector<PlannedGroup>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].members != b[i].members) return false;
    if (a[i].num_gpus != b[i].num_gpus) return false;
    if (a[i].mode != b[i].mode) return false;
    if (a[i].slots != b[i].slots) return false;
    if (a[i].offsets != b[i].offsets) return false;
    if (a[i].planned_period != b[i].planned_period) return false;  // bitwise
  }
  return true;
}

// Plans from a persistent incremental scheduler must be bit-identical to
// a full rebuild, round after round, across thread counts, top_k on and
// off, and priority policies.
TEST(IncrementalScheduler, PlansBitIdenticalToRebuildUnderChurn) {
  for (std::uint64_t seed : {13u, 99u}) {
    for (int top_k : {0, 4}) {
      for (int threads : {1, 4}) {
        for (bool known : {false, true}) {
          MuriOptions base;
          base.durations_known = known;
          base.num_threads = threads;
          base.top_k = top_k;
          base.component_cap = 8;
          base.candidate_cap = 256;
          MuriOptions incr = base;
          incr.incremental = true;
          MuriScheduler rebuild(base);
          MuriScheduler incremental(incr);
          ASSERT_EQ(rebuild.name(), incremental.name());

          Rng rng(seed);
          JobId next_id = 0;
          auto queue = make_queue(rng, next_id, 60);
          SchedulerContext ctx;
          ctx.total_gpus = 16;
          ctx.gpus_per_machine = 8;
          ctx.durations_known = known;
          for (int round = 0; round < 12; ++round) {
            const auto want = rebuild.schedule(queue, ctx);
            const auto got = incremental.schedule(queue, ctx);
            ASSERT_TRUE(same_plan(want, got))
                << "seed=" << seed << " top_k=" << top_k
                << " threads=" << threads << " known=" << known
                << " round=" << round;
            churn_queue(rng, next_id, queue);
          }
        }
      }
    }
  }
}

// Same loop with DecisionLogs attached: the logs must be byte-equal —
// the provenance a replay or explain query sees cannot depend on which
// mode produced it. Also covers attaching a log to a *warm* incremental
// scheduler (cached capture-less components must re-run, not dodge
// their match_round records).
TEST(IncrementalScheduler, DecisionLogBytesEqualRebuild) {
  for (int top_k : {0, 4}) {
    MuriOptions base;
    base.top_k = top_k;
    base.component_cap = 8;
    base.candidate_cap = 256;
    base.num_threads = 2;
    MuriOptions incr = base;
    incr.incremental = true;
    MuriScheduler rebuild(base);
    MuriScheduler incremental(incr);

    Rng rng(31);
    JobId next_id = 0;
    auto queue = make_queue(rng, next_id, 50);
    SchedulerContext ctx;
    ctx.total_gpus = 16;
    ctx.gpus_per_machine = 8;
    const std::vector<JobId> no_dirty;
    ctx.dirty_jobs = &no_dirty;

    // Two warm rounds without logs: the incremental side caches
    // capture-less component results.
    for (int round = 0; round < 2; ++round) {
      (void)rebuild.schedule(queue, ctx);
      (void)incremental.schedule(queue, ctx);
      churn_queue(rng, next_id, queue);
    }
    obs::DecisionLog want_log;
    obs::DecisionLog got_log;
    rebuild.set_decision_log(&want_log);
    incremental.set_decision_log(&got_log);
    for (int round = 0; round < 6; ++round) {
      const auto want = rebuild.schedule(queue, ctx);
      const auto got = incremental.schedule(queue, ctx);
      ASSERT_TRUE(same_plan(want, got)) << "top_k=" << top_k;
      churn_queue(rng, next_id, queue);
    }
    ASSERT_EQ(want_log.jsonl(), got_log.jsonl()) << "top_k=" << top_k;
  }
}

// The whole point: a warm incremental scheduler on an unchanged queue
// folds everything forward — components reused, no γ recomputed — and
// under churn the patched-edge count stays near the churned jobs, not
// the full graph.
TEST(IncrementalScheduler, WarmRoundsFoldWorkForward) {
  MuriOptions opt;
  opt.top_k = 4;
  opt.component_cap = 8;
  opt.candidate_cap = 256;
  opt.incremental = true;
  MuriScheduler sched(opt);

  Rng rng(17);
  JobId next_id = 0;
  auto queue = make_queue(rng, next_id, 60);
  SchedulerContext ctx;
  ctx.total_gpus = 16;
  ctx.gpus_per_machine = 8;

  (void)sched.schedule(queue, ctx);  // cold round: everything patched
  const auto& cold = sched.last_round_stats();
  EXPECT_GT(cold.components_total, 0);
  EXPECT_EQ(cold.components_reused, 0);
  EXPECT_GT(cold.edges_patched, 0);
  EXPECT_GT(cold.dirty_jobs, 0);  // all arrivals

  (void)sched.schedule(queue, ctx);  // identical queue: full reuse
  const auto& warm = sched.last_round_stats();
  // Every component either folds forward from the cache or is a trivial
  // single-member component served by the direct path.
  EXPECT_EQ(warm.components_reused + warm.components_trivial,
            warm.components_total);
  EXPECT_EQ(warm.edges_patched, 0);
  EXPECT_EQ(warm.dirty_jobs, 0);
  EXPECT_EQ(warm.matchings_run, 0);
}

}  // namespace
}  // namespace muri
