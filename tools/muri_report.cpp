// muri-report — utilization analytics over exported Chrome traces.
//
// Ingests one or more --trace-out files (from the simulator benches, the
// live executor, or examples/live_interleave) and prints per-resource
// busy/idle utilization tables, realized-vs-predicted γ per group, and
// per-job JCT breakdowns. See src/obs/analysis.h for the semantics.
//
//   muri-report trace.json                        # text tables
//   muri-report --format=csv a.json b.json        # one section per table
//   muri-report --format=json --out=report.json trace.json
//
// Exit status: 0 on success, 1 on usage/IO/parse errors, 2 when a trace
// parses but contains nothing to report (empty tables) — so CI can fail a
// run whose instrumentation silently vanished.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/analysis.h"
#include "obs/json.h"

namespace {

enum class Format { kText, kCsv, kJson };

struct Options {
  Format format = Format::kText;
  std::string out_path;
  std::vector<std::string> traces;
};

void usage(std::ostream& os) {
  os << "usage: muri-report [--format=text|csv|json] [--out=FILE] "
        "TRACE.json [TRACE.json ...]\n";
}

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      std::exit(0);
    } else if (arg.rfind("--format=", 0) == 0) {
      const std::string_view value = arg.substr(9);
      if (value == "text") {
        opts.format = Format::kText;
      } else if (value == "csv") {
        opts.format = Format::kCsv;
      } else if (value == "json") {
        opts.format = Format::kJson;
      } else {
        std::cerr << "muri-report: unknown format '" << value << "'\n";
        return false;
      }
    } else if (arg.rfind("--out=", 0) == 0) {
      opts.out_path = std::string(arg.substr(6));
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "muri-report: unknown flag '" << arg << "'\n";
      return false;
    } else {
      opts.traces.emplace_back(arg);
    }
  }
  if (opts.traces.empty()) {
    usage(std::cerr);
    return false;
  }
  return true;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
      continue;
    }
    out += c;
  }
  return out;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return 1;

  std::string output;
  bool any_content = false;
  bool first = true;

  if (opts.format == Format::kJson) output += "{\"traces\":[";

  for (const std::string& path : opts.traces) {
    std::string text;
    if (!read_file(path, text)) {
      std::cerr << "muri-report: cannot read " << path << '\n';
      return 1;
    }
    muri::obs::JsonValue root;
    std::string error;
    if (!muri::obs::parse_json(text, root, &error)) {
      std::cerr << "muri-report: " << path << ": parse error: " << error
                << '\n';
      return 1;
    }
    muri::obs::UtilizationReport report;
    if (!muri::obs::analyze_trace(root, report, &error)) {
      std::cerr << "muri-report: " << path << ": " << error << '\n';
      return 1;
    }
    any_content = any_content || !report.empty();

    switch (opts.format) {
      case Format::kText:
        if (!first) output += '\n';
        output += "== " + path + " ==\n";
        output += muri::obs::report_text(report);
        break;
      case Format::kCsv:
        // Sections already carry their own headers; a file marker line
        // keeps multi-trace output splittable.
        if (!first) output += '\n';
        output += "file," + path + "\n";
        output += muri::obs::report_csv(report);
        break;
      case Format::kJson:
        if (!first) output += ',';
        output += "{\"file\":\"" + json_escape(path) + "\",\"report\":";
        output += muri::obs::report_json(report);
        output += '}';
        break;
    }
    first = false;
  }

  if (opts.format == Format::kJson) output += "]}\n";

  if (!opts.out_path.empty()) {
    std::ofstream out(opts.out_path, std::ios::binary);
    if (!out) {
      std::cerr << "muri-report: cannot write " << opts.out_path << '\n';
      return 1;
    }
    out << output;
  } else {
    std::cout << output;
  }

  if (!any_content) {
    std::cerr << "muri-report: no spans, groups, or jobs found in "
              << (opts.traces.size() == 1 ? "the trace" : "any trace")
              << " (empty report)\n";
    return 2;
  }
  return 0;
}
