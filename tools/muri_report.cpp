// muri-report — utilization analytics over exported Chrome traces, plus
// provenance queries over decision logs.
//
// Ingests one or more --trace-out files (from the simulator benches, the
// live executor, or examples/live_interleave) and prints per-resource
// busy/idle utilization tables, realized-vs-predicted γ per group, and
// per-job JCT breakdowns. See src/obs/analysis.h for the semantics.
//
//   muri-report trace.json                        # text tables
//   muri-report --format=csv a.json b.json        # one section per table
//   muri-report --format=json --out=report.json trace.json
//
// The explain subcommands answer "why" questions against a
// --decisions-out JSONL dump (see src/obs/provenance.h):
//
//   muri-report explain-job 42 decisions.jsonl    # one job's full history
//   muri-report explain-round 3 --format=json decisions.jsonl
//
// The replay subcommand reconstructs scheduler state (src/recovery) from
// a decision stream — either a durable WAL (auto-detected by its magic;
// last snapshot + suffix replay) or a plain JSONL dump:
//
//   muri-report replay decisions.wal              # human summary
//   muri-report replay --format=json crash.jsonl  # ReplayState JSON
//
// The jobs subcommand renders per-job service latencies
// (submit → first scheduled → finished, src/obs/jobs_report.h) from the
// same inputs — typically a daemon WAL:
//
//   muri-report jobs daemon.wal                   # table + percentiles
//   muri-report jobs --format=csv decisions.jsonl
//
// The timeline subcommand folds a decision stream (WAL or JSONL) through
// the per-job span recorder (src/obs/jobtrace) and renders one waterfall
// per job: submit → round wait verdicts → placement/restart → preempt/
// evict/straggler/degraded windows → finish, with the wait buckets that
// sum to the realized JCT. Output is byte-stable for a fixed input.
//
//   muri-report timeline 42 daemon.wal            # one job's waterfall
//   muri-report timeline all --format=csv decisions.jsonl
//   muri-report timeline all --format=chrome --out=spans.json run.jsonl
//
// The slo subcommand renders an offline SLO violation summary — the
// batch twin of the daemon's live GET /stats gate. Input is either a
// decision stream (WAL or JSONL: wait/JCT percentiles from the job
// records) or a GET /metrics/history dump (per-series stats straight
// from the daemon's time-series store). Threshold flags turn the render
// into a verdict:
//
//   muri-report slo daemon.wal --wait-p99=60 --jct-p99=900
//   muri-report slo history.json --stall-max=1 --round-p99=0.05
//
// A torn tail (crashed writer) is reported on stderr with its byte
// offset and the valid prefix is replayed — that is the point.
//
// Exit status: 0 on success, 1 on usage/IO/parse/schema errors, 2 when
// the input parses but yields nothing to report (empty tables, an
// explain query matching no record, or a replay of zero records) — so
// CI can fail a run whose instrumentation silently vanished. The slo
// subcommand adds 3: the input rendered fine but at least one threshold
// flag was violated.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/build_info.h"
#include "common/stats.h"
#include "obs/analysis.h"
#include "obs/jobtrace.h"
#include "obs/jobs_report.h"
#include "obs/json.h"
#include "obs/provenance.h"
#include "recovery/durable.h"
#include "recovery/replay.h"
#include "recovery/wal.h"

namespace {

enum class Format { kText, kCsv, kJson, kChrome };

enum class Mode {
  kTraceReport,
  kExplainJob,
  kExplainRound,
  kReplay,
  kJobs,
  kSlo,
  kTimeline,
};

struct Options {
  Format format = Format::kText;
  Mode mode = Mode::kTraceReport;
  std::int64_t explain_id = 0;  // job id or round number
  bool timeline_all = false;    // timeline all vs. one job
  std::string out_path;
  std::vector<std::string> traces;  // trace files, or the decisions file
  // slo subcommand thresholds; < 0 = render only, no verdict.
  double slo_wait_p99 = -1;
  double slo_jct_p99 = -1;
  double slo_round_p99 = -1;
  double slo_fsync_max = -1;
  double slo_stall_max = -1;
};

void usage(std::ostream& os) {
  os << "usage: muri-report [--format=text|csv|json] [--out=FILE] "
        "TRACE.json [TRACE.json ...]\n"
        "       muri-report explain-job ID [--format=text|json] [--out=FILE] "
        "DECISIONS.jsonl\n"
        "       muri-report explain-round N [--format=text|json] [--out=FILE] "
        "DECISIONS.jsonl\n"
        "       muri-report replay [--format=text|json] [--out=FILE] "
        "WAL-or-DECISIONS-file\n"
        "       muri-report jobs [--format=text|csv|json] [--out=FILE] "
        "WAL-or-DECISIONS-file\n"
        "       muri-report timeline JOB|all "
        "[--format=text|csv|json|chrome] [--out=FILE] "
        "WAL-or-DECISIONS-file\n"
        "       muri-report slo [--format=text|json] [--out=FILE]\n"
        "                   [--wait-p99=S] [--jct-p99=S] [--round-p99=S]\n"
        "                   [--fsync-max=S] [--stall-max=S]\n"
        "                   WAL-or-DECISIONS-or-HISTORY-file\n";
}

bool parse_int64(std::string_view text, std::int64_t& out) {
  if (text.empty()) return false;
  std::int64_t value = 0;
  std::size_t i = 0;
  const bool negative = text[0] == '-';
  if (negative) i = 1;
  if (i == text.size()) return false;
  for (; i < text.size(); ++i) {
    if (text[i] < '0' || text[i] > '9') return false;
    value = value * 10 + (text[i] - '0');
  }
  out = negative ? -value : value;
  return true;
}

bool parse_args(int argc, char** argv, Options& opts) {
  std::vector<std::string_view> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      std::exit(0);
    } else if (arg == "--version") {
      std::cout << "muri-report " << muri::build_version() << " ("
                << muri::build_git_sha() << ")\n";
      std::exit(0);
    } else if (arg.rfind("--format=", 0) == 0) {
      const std::string_view value = arg.substr(9);
      if (value == "text") {
        opts.format = Format::kText;
      } else if (value == "csv") {
        opts.format = Format::kCsv;
      } else if (value == "json") {
        opts.format = Format::kJson;
      } else if (value == "chrome") {
        opts.format = Format::kChrome;
      } else {
        std::cerr << "muri-report: unknown format '" << value << "'\n";
        return false;
      }
    } else if (arg.rfind("--out=", 0) == 0) {
      opts.out_path = std::string(arg.substr(6));
    } else if (arg.rfind("--wait-p99=", 0) == 0) {
      opts.slo_wait_p99 = std::atof(std::string(arg.substr(11)).c_str());
    } else if (arg.rfind("--jct-p99=", 0) == 0) {
      opts.slo_jct_p99 = std::atof(std::string(arg.substr(10)).c_str());
    } else if (arg.rfind("--round-p99=", 0) == 0) {
      opts.slo_round_p99 = std::atof(std::string(arg.substr(12)).c_str());
    } else if (arg.rfind("--fsync-max=", 0) == 0) {
      opts.slo_fsync_max = std::atof(std::string(arg.substr(12)).c_str());
    } else if (arg.rfind("--stall-max=", 0) == 0) {
      opts.slo_stall_max = std::atof(std::string(arg.substr(12)).c_str());
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "muri-report: unknown flag '" << arg << "'\n";
      return false;
    } else {
      positional.emplace_back(arg);
    }
  }

  // The replay subcommand claims one positional: the WAL or JSONL file.
  if (!positional.empty() && positional[0] == "replay") {
    opts.mode = Mode::kReplay;
    positional.erase(positional.begin());
    if (opts.format == Format::kCsv) {
      std::cerr << "muri-report: replay output is text or json, not csv\n";
      return false;
    }
    if (positional.size() != 1) {
      std::cerr << "muri-report: replay takes exactly one WAL or "
                   "DECISIONS.jsonl file\n";
      return false;
    }
  }
  // The slo subcommand takes a decision stream or a history dump.
  if (!positional.empty() && positional[0] == "slo") {
    opts.mode = Mode::kSlo;
    positional.erase(positional.begin());
    if (opts.format == Format::kCsv) {
      std::cerr << "muri-report: slo output is text or json, not csv\n";
      return false;
    }
    if (positional.size() != 1) {
      std::cerr << "muri-report: slo takes exactly one WAL, "
                   "DECISIONS.jsonl, or metrics-history file\n";
      return false;
    }
  }
  // The timeline subcommand claims a job id (or "all") plus the input.
  if (!positional.empty() && positional[0] == "timeline") {
    opts.mode = Mode::kTimeline;
    if (positional.size() < 2) {
      std::cerr << "muri-report: timeline needs a job id or 'all'\n";
      return false;
    }
    if (positional[1] == "all") {
      opts.timeline_all = true;
    } else if (!parse_int64(positional[1], opts.explain_id)) {
      std::cerr << "muri-report: timeline needs a job id or 'all'\n";
      return false;
    }
    positional.erase(positional.begin(), positional.begin() + 2);
    if (positional.size() != 1) {
      std::cerr << "muri-report: timeline takes exactly one WAL or "
                   "DECISIONS.jsonl file\n";
      return false;
    }
  }
  // The jobs subcommand has the replay input contract (WAL or JSONL).
  if (!positional.empty() && positional[0] == "jobs") {
    opts.mode = Mode::kJobs;
    positional.erase(positional.begin());
    if (positional.size() != 1) {
      std::cerr << "muri-report: jobs takes exactly one WAL or "
                   "DECISIONS.jsonl file\n";
      return false;
    }
  }
  // An explain subcommand claims the first two positionals; everything
  // after is input files (exactly one decisions dump).
  if (!positional.empty() &&
      (positional[0] == "explain-job" || positional[0] == "explain-round")) {
    opts.mode = positional[0] == "explain-job" ? Mode::kExplainJob
                                               : Mode::kExplainRound;
    if (positional.size() < 2 || !parse_int64(positional[1], opts.explain_id)) {
      std::cerr << "muri-report: " << positional[0]
                << " needs an integer argument\n";
      return false;
    }
    positional.erase(positional.begin(), positional.begin() + 2);
    if (opts.format == Format::kCsv) {
      std::cerr << "muri-report: explain output is text or json, not csv\n";
      return false;
    }
    if (positional.size() != 1) {
      std::cerr << "muri-report: " << (opts.mode == Mode::kExplainJob
                                           ? "explain-job"
                                           : "explain-round")
                << " takes exactly one DECISIONS.jsonl file\n";
      return false;
    }
  }
  for (const std::string_view p : positional) opts.traces.emplace_back(p);
  if (opts.traces.empty()) {
    usage(std::cerr);
    return false;
  }
  if (opts.format == Format::kChrome && opts.mode != Mode::kTimeline) {
    std::cerr << "muri-report: --format=chrome is timeline-only\n";
    return false;
  }
  return true;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
      continue;
    }
    out += c;
  }
  return out;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

// Prints `output` to --out or stdout; false on I/O failure.
bool emit_output(const Options& opts, const std::string& output) {
  if (!opts.out_path.empty()) {
    std::ofstream out(opts.out_path, std::ios::binary);
    if (!out) {
      std::cerr << "muri-report: cannot write " << opts.out_path << '\n';
      return false;
    }
    out << output;
    return true;
  }
  std::cout << output;
  return true;
}

int run_explain(const Options& opts) {
  const std::string& path = opts.traces.front();
  std::string text;
  if (!read_file(path, text)) {
    std::cerr << "muri-report: cannot read " << path << '\n';
    return 1;
  }
  std::string error;
  // Validate first: a malformed dump should fail loudly, not produce a
  // partial explanation.
  if (!muri::obs::validate_decision_log(text, &error)) {
    std::cerr << "muri-report: " << path << ": " << error << '\n';
    return 1;
  }
  std::vector<muri::obs::DecisionRecord> records;
  if (!muri::obs::parse_decision_log(text, records, &error)) {
    std::cerr << "muri-report: " << path << ": " << error << '\n';
    return 1;
  }

  std::string output;
  if (opts.mode == Mode::kExplainJob) {
    output = opts.format == Format::kJson
                 ? muri::obs::explain_job_json(records, opts.explain_id)
                 : muri::obs::explain_job_text(records, opts.explain_id);
  } else {
    output = opts.format == Format::kJson
                 ? muri::obs::explain_round_json(records, opts.explain_id)
                 : muri::obs::explain_round_text(records, opts.explain_id);
  }
  if (output.empty()) {
    std::cerr << "muri-report: no record of "
              << (opts.mode == Mode::kExplainJob ? "job " : "round ")
              << opts.explain_id << " in " << path << '\n';
    return 2;
  }
  return emit_output(opts, output) ? 0 : 1;
}

int run_replay(const Options& opts) {
  const std::string& path = opts.traces.front();
  std::string text;
  if (!read_file(path, text)) {
    std::cerr << "muri-report: cannot read " << path << '\n';
    return 1;
  }

  muri::recovery::ReplayState state;
  std::string error;
  if (muri::recovery::looks_like_wal(text)) {
    muri::recovery::RecoverResult recovered;
    if (!muri::recovery::recover_wal(path, recovered, &error)) {
      std::cerr << "muri-report: " << path << ": " << error << '\n';
      return 1;
    }
    if (recovered.torn) {
      std::cerr << "muri-report: " << path
                << ": warning: torn tail ignored (" << recovered.torn_reason
                << ")\n";
    }
    if (recovered.records_on_disk == 0) {
      std::cerr << "muri-report: no records in " << path << '\n';
      return 2;
    }
    if (recovered.used_snapshot) {
      std::cerr << "muri-report: recovered from snapshot + "
                << recovered.replayed_records << "-record suffix\n";
    }
    state = recovered.state;
  } else {
    muri::recovery::ReplayEngine engine;
    std::string tail_warning;
    if (!engine.replay(text, &error, &tail_warning)) {
      std::cerr << "muri-report: " << path << ": " << error << '\n';
      return 1;
    }
    if (!tail_warning.empty()) {
      std::cerr << "muri-report: " << path << ": warning: " << tail_warning
                << '\n';
    }
    if (engine.state().records == 0) {
      std::cerr << "muri-report: no records in " << path << '\n';
      return 2;
    }
    state = engine.state();
  }

  const std::string output = opts.format == Format::kJson
                                 ? muri::recovery::state_json(state)
                                 : muri::recovery::state_text(state);
  return emit_output(opts, output) ? 0 : 1;
}

// Reads a decision stream — a durable WAL (re-joined into JSONL; record
// frames only, snapshots carry folded state, not job events) or a plain
// JSONL dump — into parsed records. Returns 0, or 1 after reporting an
// IO/parse error on stderr; torn tails warn and keep the valid prefix.
int read_decision_stream(const std::string& path,
                         std::vector<muri::obs::DecisionRecord>& records) {
  std::string text;
  if (!read_file(path, text)) {
    std::cerr << "muri-report: cannot read " << path << '\n';
    return 1;
  }
  if (muri::recovery::looks_like_wal(text)) {
    muri::recovery::WalReadResult decoded;
    std::string error;
    if (!muri::recovery::read_wal_file(path, decoded, &error)) {
      std::cerr << "muri-report: " << path << ": " << error << '\n';
      return 1;
    }
    if (decoded.torn) {
      std::cerr << "muri-report: " << path
                << ": warning: torn tail ignored (" << decoded.torn_reason
                << ")\n";
    }
    text.clear();
    for (const muri::recovery::WalFrame& frame : decoded.frames) {
      if (frame.kind != muri::recovery::FrameKind::kRecord) continue;
      text += frame.payload;
      text += '\n';
    }
  }
  std::string error;
  std::string tail_warning;
  if (!muri::obs::parse_decision_log(text, records, &error, &tail_warning)) {
    std::cerr << "muri-report: " << path << ": " << error << '\n';
    return 1;
  }
  if (!tail_warning.empty()) {
    std::cerr << "muri-report: " << path << ": warning: " << tail_warning
              << '\n';
  }
  return 0;
}

int run_jobs(const Options& opts) {
  const std::string& path = opts.traces.front();
  std::vector<muri::obs::DecisionRecord> records;
  if (const int rc = read_decision_stream(path, records); rc != 0) {
    return rc;
  }
  const muri::obs::JobsReport report = muri::obs::build_jobs_report(records);
  if (report.empty()) {
    std::cerr << "muri-report: no job records in " << path << '\n';
    return 2;
  }
  std::string output;
  switch (opts.format) {
    case Format::kText:
      output = muri::obs::jobs_report_text(report);
      break;
    case Format::kCsv:
      output = muri::obs::jobs_report_csv(report);
      break;
    case Format::kJson:
      output = muri::obs::jobs_report_json(report);
      break;
    case Format::kChrome:
      break;  // rejected in parse_args
  }
  return emit_output(opts, output) ? 0 : 1;
}

int run_timeline(const Options& opts) {
  const std::string& path = opts.traces.front();
  std::vector<muri::obs::DecisionRecord> records;
  if (const int rc = read_decision_stream(path, records); rc != 0) {
    return rc;
  }
  muri::obs::JobTraceLog log;
  muri::obs::build_job_traces(records, log);
  std::vector<muri::obs::JobTimeline> timelines;
  if (opts.timeline_all) {
    timelines = log.timelines();
  } else {
    muri::obs::JobTimeline t;
    if (log.timeline(opts.explain_id, t)) timelines.push_back(std::move(t));
  }
  if (timelines.empty()) {
    if (opts.timeline_all) {
      std::cerr << "muri-report: no job records in " << path << '\n';
    } else {
      std::cerr << "muri-report: no record of job " << opts.explain_id
                << " in " << path << '\n';
    }
    return 2;
  }
  // Self-check: every finished, fully-observed timeline must satisfy the
  // attribution invariant (spans contiguous, buckets sum to the reported
  // JCT) — a violation means the log and the recorder disagree.
  for (const muri::obs::JobTimeline& t : timelines) {
    if (!t.finished || t.restored) continue;
    const std::string invariant = muri::obs::validate_timeline(t);
    if (!invariant.empty()) {
      std::cerr << "muri-report: job " << t.job
                << ": timeline invariant violated: " << invariant << '\n';
      return 1;
    }
  }
  std::string output;
  switch (opts.format) {
    case Format::kText:
      for (const muri::obs::JobTimeline& t : timelines) {
        if (!output.empty()) output += '\n';
        output += muri::obs::timeline_text(t);
      }
      break;
    case Format::kCsv:
      output = muri::obs::timeline_csv(timelines);
      break;
    case Format::kJson:
      output = opts.timeline_all
                   ? muri::obs::timelines_json(timelines)
                   : muri::obs::timeline_json(timelines.front());
      output += '\n';
      break;
    case Format::kChrome:
      output = muri::obs::chrome_trace_json(timelines);
      output += '\n';
      break;
  }
  return emit_output(opts, output) ? 0 : 1;
}

// One line of the SLO verdict table. threshold < 0 = render-only.
struct SloLine {
  std::string name;
  const char* reduce = "p99";
  double threshold = -1;
  double value = 0;
  std::int64_t samples = 0;
  bool violated = false;
};

std::string fmt_g(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string slo_render(const std::string& source, const Options& opts,
                       const std::vector<SloLine>& lines) {
  int violated = 0;
  for (const SloLine& l : lines) violated += l.violated ? 1 : 0;
  std::string out;
  if (opts.format == Format::kJson) {
    out += "{\"source\":\"" + json_escape(source) + "\",\"targets\":[";
    bool first = true;
    for (const SloLine& l : lines) {
      if (!first) out += ',';
      first = false;
      out += "{\"name\":\"" + l.name + "\",\"reduce\":\"" + l.reduce +
             "\",\"samples\":" + std::to_string(l.samples) +
             ",\"value\":" + fmt_g(l.value);
      if (l.threshold >= 0) {
        out += ",\"threshold\":" + fmt_g(l.threshold) +
               ",\"violated\":" + (l.violated ? "true" : "false");
      }
      out += '}';
    }
    out += "],\"violated\":" + std::to_string(violated) + "}\n";
    return out;
  }
  out += "slo report (" + source + ")\n";
  for (const SloLine& l : lines) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%-16s %-4s %10.6g  samples %lld",
                  l.name.c_str(), l.reduce, l.value,
                  static_cast<long long>(l.samples));
    out += buf;
    if (l.threshold >= 0) {
      std::snprintf(buf, sizeof(buf), "  [<= %.6g: %s]", l.threshold,
                    l.violated ? "VIOLATED" : "ok");
      out += buf;
    }
    out += '\n';
  }
  out += "verdict: ";
  out += violated == 0 ? "ok" : std::to_string(violated) + " violated";
  out += '\n';
  return out;
}

// slo over a GET /metrics/history dump: per-series stats are already in
// the JSON; map the daemon's SLO series names onto the threshold flags.
int run_slo_history(const Options& opts, const muri::obs::JsonValue& root) {
  const muri::obs::JsonValue& series = root.at("series");
  if (series.object.empty()) {
    std::cerr << "muri-report: no series in " << opts.traces.front() << '\n';
    return 2;
  }
  std::vector<SloLine> lines;
  for (const auto& [name, s] : series.object) {
    SloLine l;
    l.name = name;
    l.samples = static_cast<std::int64_t>(s.at("count").number);
    if (name == "queue_wait_s" || name == "jct_s" ||
        name == "round_latency_s") {
      l.reduce = "p99";
      l.value = s.at("p99").number;
    } else {
      l.reduce = "max";
      l.value = s.at("max").number;
    }
    if (name == "queue_wait_s") l.threshold = opts.slo_wait_p99;
    if (name == "jct_s") l.threshold = opts.slo_jct_p99;
    if (name == "round_latency_s") l.threshold = opts.slo_round_p99;
    if (name == "wal_fsync_s") l.threshold = opts.slo_fsync_max;
    if (name == "loop_stall_s") l.threshold = opts.slo_stall_max;
    l.violated =
        l.threshold >= 0 && l.samples > 0 && l.value > l.threshold;
    lines.push_back(std::move(l));
  }
  const std::string output = slo_render("metrics history", opts, lines);
  if (!emit_output(opts, output)) return 1;
  for (const SloLine& l : lines) {
    if (l.violated) return 3;
  }
  return 0;
}

// slo over a decision stream: wait/JCT percentiles from the job records
// (round latency / fsync / stall are live-plane quantities — a WAL does
// not carry them; use a history dump for those).
int run_slo(const Options& opts) {
  const std::string& path = opts.traces.front();
  std::string text;
  if (!read_file(path, text)) {
    std::cerr << "muri-report: cannot read " << path << '\n';
    return 1;
  }
  // A /metrics/history dump is one JSON object with a "series" map.
  {
    muri::obs::JsonValue root;
    if (muri::obs::parse_json(text, root) && root.at("series").is_object()) {
      return run_slo_history(opts, root);
    }
  }
  if (muri::recovery::looks_like_wal(text)) {
    muri::recovery::WalReadResult decoded;
    std::string error;
    if (!muri::recovery::read_wal_file(path, decoded, &error)) {
      std::cerr << "muri-report: " << path << ": " << error << '\n';
      return 1;
    }
    if (decoded.torn) {
      std::cerr << "muri-report: " << path
                << ": warning: torn tail ignored (" << decoded.torn_reason
                << ")\n";
    }
    text.clear();
    for (const muri::recovery::WalFrame& frame : decoded.frames) {
      if (frame.kind != muri::recovery::FrameKind::kRecord) continue;
      text += frame.payload;
      text += '\n';
    }
  }
  std::string error;
  std::string tail_warning;
  std::vector<muri::obs::DecisionRecord> records;
  if (!muri::obs::parse_decision_log(text, records, &error, &tail_warning)) {
    std::cerr << "muri-report: " << path << ": " << error << '\n';
    return 1;
  }
  if (!tail_warning.empty()) {
    std::cerr << "muri-report: " << path << ": warning: " << tail_warning
              << '\n';
  }
  const muri::obs::JobsReport report = muri::obs::build_jobs_report(records);
  if (report.empty()) {
    std::cerr << "muri-report: no job records in " << path << '\n';
    return 2;
  }
  std::vector<double> waits;
  std::vector<double> jcts;
  for (const muri::obs::JobLatencyRow& row : report.rows) {
    if (row.has_wait()) waits.push_back(row.wait());
    if (row.has_jct()) jcts.push_back(row.jct());
  }
  std::vector<SloLine> lines;
  {
    SloLine l;
    l.name = "queue_wait_s";
    l.samples = static_cast<std::int64_t>(waits.size());
    l.value = waits.empty() ? 0 : muri::percentile(waits, 99);
    l.threshold = opts.slo_wait_p99;
    l.violated = l.threshold >= 0 && l.samples > 0 && l.value > l.threshold;
    lines.push_back(std::move(l));
  }
  {
    SloLine l;
    l.name = "jct_s";
    l.samples = static_cast<std::int64_t>(jcts.size());
    l.value = jcts.empty() ? 0 : muri::percentile(jcts, 99);
    l.threshold = opts.slo_jct_p99;
    l.violated = l.threshold >= 0 && l.samples > 0 && l.value > l.threshold;
    lines.push_back(std::move(l));
  }
  const std::string output = slo_render("decision stream", opts, lines);
  if (!emit_output(opts, output)) return 1;
  for (const SloLine& l : lines) {
    if (l.violated) return 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return 1;
  if (opts.mode == Mode::kReplay) return run_replay(opts);
  if (opts.mode == Mode::kJobs) return run_jobs(opts);
  if (opts.mode == Mode::kSlo) return run_slo(opts);
  if (opts.mode == Mode::kTimeline) return run_timeline(opts);
  if (opts.mode != Mode::kTraceReport) return run_explain(opts);

  std::string output;
  bool any_content = false;
  bool first = true;

  if (opts.format == Format::kJson) output += "{\"traces\":[";

  for (const std::string& path : opts.traces) {
    std::string text;
    if (!read_file(path, text)) {
      std::cerr << "muri-report: cannot read " << path << '\n';
      return 1;
    }
    muri::obs::JsonValue root;
    std::string error;
    if (!muri::obs::parse_json(text, root, &error)) {
      std::cerr << "muri-report: " << path << ": parse error: " << error
                << '\n';
      return 1;
    }
    muri::obs::UtilizationReport report;
    if (!muri::obs::analyze_trace(root, report, &error)) {
      std::cerr << "muri-report: " << path << ": " << error << '\n';
      return 1;
    }
    any_content = any_content || !report.empty();

    switch (opts.format) {
      case Format::kText:
        if (!first) output += '\n';
        output += "== " + path + " ==\n";
        output += muri::obs::report_text(report);
        break;
      case Format::kCsv:
        // Sections already carry their own headers; a file marker line
        // keeps multi-trace output splittable.
        if (!first) output += '\n';
        output += "file," + path + "\n";
        output += muri::obs::report_csv(report);
        break;
      case Format::kJson:
        if (!first) output += ',';
        output += "{\"file\":\"" + json_escape(path) + "\",\"report\":";
        output += muri::obs::report_json(report);
        output += '}';
        break;
      case Format::kChrome:
        break;  // rejected in parse_args
    }
    first = false;
  }

  if (opts.format == Format::kJson) output += "]}\n";

  if (!emit_output(opts, output)) return 1;

  if (!any_content) {
    std::cerr << "muri-report: no spans, groups, or jobs found in "
              << (opts.traces.size() == 1 ? "the trace" : "any trace")
              << " (empty report)\n";
    return 2;
  }
  return 0;
}
