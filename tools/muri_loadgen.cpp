// muri-loadgen — replays a Philly-style trace against a live muri-daemon
// and reports end-to-end service latencies.
//
//   muri-loadgen --port=8080 --jobs=200 --compression=500
//   muri-loadgen --port=8080 --trace=trace.csv --compression=100
//
// The generator walks the trace in submit order, sleeping until each
// job's wall due time (sim submit_time ÷ compression — the daemon must
// run with the same --compression) and POSTing it to /jobs. Every
// submission carries an idempotency name ("lg-<i>"), which makes the
// client's retry loop safe across daemon restarts:
//
//   429 (queue full)     wait Retry-After, resubmit
//   connect/read error   daemon restarting — back off, resubmit
//   404 while polling    job lost to a crash before its WAL record —
//                        resubmit under the same name (no duplicates:
//                        the daemon dedupes by name)
//
// After the last submission it polls GET /jobs until every job is
// finished (or cancelled), with a no-progress stall timeout. Exit 0 only
// when zero jobs were lost or stuck; the report prints wall-observed
// submit latency and daemon-reported wait/JCT percentiles.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "job/model.h"
#include "job/trace.h"
#include "obs/json.h"
#include "service/http_client.h"

namespace {

using Clock = std::chrono::steady_clock;
using muri::service::ClientResponse;
using muri::service::http_request;

struct Options {
  int port = 0;
  int jobs = 200;
  std::uint64_t seed = 1;
  double compression = 500;
  std::string trace_path;       // optional CSV (overrides --jobs/--seed)
  double stall_timeout_s = 60;  // wall seconds without progress
  bool json = false;
};

void usage(std::FILE* out) {
  std::fputs(
      "usage: muri-loadgen --port=N [options]\n"
      "  --jobs=N           synthetic trace size (default 200)\n"
      "  --seed=N           synthetic trace seed (default 1)\n"
      "  --trace=FILE       replay a trace CSV instead of generating\n"
      "  --compression=X    sim seconds per wall second; must match the\n"
      "                     daemon's --compression (default 500)\n"
      "  --stall-timeout=S  abort after S wall seconds without progress\n"
      "                     (default 60)\n"
      "  --json             machine-readable report\n",
      out);
}

muri::Trace make_trace(const Options& opts) {
  if (!opts.trace_path.empty()) {
    return muri::read_trace_csv(opts.trace_path, "loadgen");
  }
  // CI-friendly shape: minutes-scale jobs at a rate that keeps a small
  // cluster busy, so a 200-job replay at 500x compression lands in tens
  // of wall seconds.
  muri::PhillyTraceOptions trace_opts;
  trace_opts.name = "loadgen";
  trace_opts.num_jobs = opts.jobs;
  trace_opts.seed = opts.seed;
  trace_opts.jobs_per_hour = 3600;
  trace_opts.duration_log_mean = 5.0;  // e^5 ≈ 150 s median
  trace_opts.duration_log_sigma = 1.0;
  trace_opts.min_duration = 30;
  trace_opts.max_duration = 1200;
  trace_opts.gpu_count_weights = {0.72, 0.10, 0.09, 0.05, 0.03, 0.01};
  return muri::generate_philly_like(trace_opts);
}

std::string submit_body(const muri::Job& job, const std::string& name) {
  std::string body = "{\"model\":\"";
  body += muri::to_string(job.model);
  body += "\",\"gpus\":" + std::to_string(job.num_gpus);
  body += ",\"iterations\":" + std::to_string(job.iterations);
  body += ",\"name\":\"" + name + "\"}";
  return body;
}

// Submits one job, riding out 429 backpressure and daemon restarts.
// Returns the daemon-assigned job id, or -1 after `budget` wall seconds.
long long submit_with_retry(const Options& opts, const muri::Job& job,
                            const std::string& name, double budget_s) {
  const Clock::time_point give_up =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(budget_s));
  int backoff_ms = 50;
  while (Clock::now() < give_up) {
    ClientResponse resp;
    std::string error;
    if (!http_request(opts.port, "POST", "/jobs", submit_body(job, name),
                      resp, &error)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, 1000);
      continue;
    }
    if (resp.status == 202 || resp.status == 200) {
      muri::obs::JsonValue v;
      if (muri::obs::parse_json(resp.body, v) && v.at("job").is_number()) {
        return static_cast<long long>(v.at("job").number);
      }
      return -1;
    }
    if (resp.status == 429 || resp.status == 503) {
      const std::string retry_after = resp.header("retry-after");
      int wait_ms = retry_after.empty()
                        ? backoff_ms
                        : std::atoi(retry_after.c_str()) * 1000;
      if (wait_ms <= 0) wait_ms = backoff_ms;
      std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
      backoff_ms = std::min(backoff_ms * 2, 1000);
      continue;
    }
    std::fprintf(stderr, "muri-loadgen: POST /jobs -> %d: %s\n", resp.status,
                 resp.body.c_str());
    return -1;
  }
  return -1;
}

double pct(std::vector<double> xs, double p) {
  return xs.empty() ? 0.0 : muri::percentile(std::move(xs), p);
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else if (arg.rfind("--port=", 0) == 0) {
      opts.port = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      opts.jobs = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--seed=", 0) == 0) {
      opts.seed = static_cast<std::uint64_t>(
          std::strtoull(arg.c_str() + 7, nullptr, 10));
    } else if (arg.rfind("--trace=", 0) == 0) {
      opts.trace_path = arg.substr(8);
    } else if (arg.rfind("--compression=", 0) == 0) {
      opts.compression = std::atof(arg.c_str() + 14);
    } else if (arg.rfind("--stall-timeout=", 0) == 0) {
      opts.stall_timeout_s = std::atof(arg.c_str() + 16);
    } else if (arg == "--json") {
      opts.json = true;
    } else {
      std::fprintf(stderr, "muri-loadgen: unknown flag '%s'\n", arg.c_str());
      usage(stderr);
      return 1;
    }
  }
  if (opts.port <= 0 || opts.compression <= 0) {
    usage(stderr);
    return 1;
  }

  const muri::Trace trace = make_trace(opts);
  const std::size_t n = trace.jobs.size();
  std::fprintf(stderr,
               "muri-loadgen: replaying %zu jobs at %gx against "
               "127.0.0.1:%d\n",
               n, opts.compression, opts.port);

  // name -> (trace index, daemon job id); ids re-learned on resubmit.
  std::map<std::string, long long> ids;
  std::vector<double> submit_latency_ms;  // wall: due time -> accepted

  const Clock::time_point start = Clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    const muri::Job& job = trace.jobs[i];
    const double due_wall_s = job.submit_time / opts.compression;
    const Clock::time_point due =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(due_wall_s));
    std::this_thread::sleep_until(due);
    const std::string name = "lg-" + std::to_string(i);
    const Clock::time_point before = Clock::now();
    const long long id =
        submit_with_retry(opts, job, name, opts.stall_timeout_s);
    if (id < 0) {
      std::fprintf(stderr, "muri-loadgen: giving up on job %zu (%s)\n", i,
                   name.c_str());
      return 1;
    }
    ids[name] = id;
    submit_latency_ms.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - before)
            .count());
  }

  // Poll until every job reaches a terminal state; resubmit any id the
  // daemon no longer knows (lost to a crash before its WAL record).
  std::set<std::string> open;
  for (const auto& [name, id] : ids) open.insert(name);
  std::vector<double> waits;
  std::vector<double> jcts;
  std::size_t finished = 0;
  std::size_t cancelled = 0;
  Clock::time_point last_progress = Clock::now();
  std::size_t last_open = open.size();

  while (!open.empty()) {
    ClientResponse resp;
    std::string error;
    if (!http_request(opts.port, "GET", "/jobs", "", resp, &error) ||
        resp.status != 200) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    } else {
      muri::obs::JsonValue root;
      std::map<long long, const muri::obs::JsonValue*> by_id;
      if (muri::obs::parse_json(resp.body, root)) {
        for (const muri::obs::JsonValue& j : root.at("jobs").array) {
          by_id[static_cast<long long>(j.at("job").number)] = &j;
        }
      }
      for (auto it = open.begin(); it != open.end();) {
        const std::string& name = *it;
        const auto found = by_id.find(ids[name]);
        if (found == by_id.end()) {
          // Unknown to the daemon: resubmit under the same name.
          const std::size_t idx = static_cast<std::size_t>(
              std::atoll(name.c_str() + 3));
          const long long id = submit_with_retry(
              opts, trace.jobs[idx], name, opts.stall_timeout_s);
          if (id >= 0) ids[name] = id;
          ++it;
          continue;
        }
        const std::string& state = found->second->at("state").string;
        if (state == "finished" || state == "cancelled") {
          if (state == "finished") {
            ++finished;
            const muri::obs::JsonValue& j = *found->second;
            if (j.at("end_t").is_number() && j.at("submit_t").is_number()) {
              jcts.push_back(j.at("end_t").number - j.at("submit_t").number);
            }
            if (j.at("first_scheduled_t").is_number() &&
                j.at("submit_t").is_number()) {
              waits.push_back(j.at("first_scheduled_t").number -
                              j.at("submit_t").number);
            }
          } else {
            ++cancelled;
          }
          it = open.erase(it);
        } else {
          ++it;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (open.size() < last_open) {
      last_open = open.size();
      last_progress = Clock::now();
    } else if (std::chrono::duration<double>(Clock::now() - last_progress)
                   .count() > opts.stall_timeout_s) {
      std::fprintf(stderr,
                   "muri-loadgen: stalled — %zu jobs stuck after %g s\n",
                   open.size(), opts.stall_timeout_s);
      return 1;
    }
  }

  const double wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (opts.json) {
    std::printf(
        "{\"jobs\":%zu,\"finished\":%zu,\"cancelled\":%zu,\"lost\":0,"
        "\"wall_s\":%.3f,"
        "\"submit_ms\":{\"p50\":%.3f,\"p90\":%.3f,\"p99\":%.3f},"
        "\"wait_s\":{\"p50\":%.3f,\"p90\":%.3f,\"p99\":%.3f},"
        "\"jct_s\":{\"p50\":%.3f,\"p90\":%.3f,\"p99\":%.3f}}\n",
        n, finished, cancelled, wall_s, pct(submit_latency_ms, 50),
        pct(submit_latency_ms, 90), pct(submit_latency_ms, 99),
        pct(waits, 50), pct(waits, 90), pct(waits, 99), pct(jcts, 50),
        pct(jcts, 90), pct(jcts, 99));
  } else {
    std::printf("jobs %zu  finished %zu  cancelled %zu  lost 0  wall %.1fs\n",
                n, finished, cancelled, wall_s);
    std::printf("submit latency ms  p50 %.2f  p90 %.2f  p99 %.2f\n",
                pct(submit_latency_ms, 50), pct(submit_latency_ms, 90),
                pct(submit_latency_ms, 99));
    std::printf("wait (sim s)       p50 %.1f  p90 %.1f  p99 %.1f\n",
                pct(waits, 50), pct(waits, 90), pct(waits, 99));
    std::printf("jct (sim s)        p50 %.1f  p90 %.1f  p99 %.1f\n",
                pct(jcts, 50), pct(jcts, 90), pct(jcts, 99));
  }
  return 0;
}
