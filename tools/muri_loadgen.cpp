// muri-loadgen — replays a Philly-style trace against a live muri-daemon
// and reports end-to-end service latencies.
//
//   muri-loadgen --port=8080 --jobs=200 --compression=500
//   muri-loadgen --port=8080 --trace=trace.csv --compression=100
//
// The generator walks the trace in submit order, sleeping until each
// job's wall due time (sim submit_time ÷ compression — the daemon must
// run with the same --compression) and POSTing it to /jobs. Every
// submission carries an idempotency name ("lg-<i>"), which makes the
// client's retry loop safe across daemon restarts:
//
//   429 (queue full)     wait Retry-After, resubmit
//   connect/read error   daemon restarting — back off, resubmit
//   404 while polling    job lost to a crash before its WAL record —
//                        resubmit under the same name (no duplicates:
//                        the daemon dedupes by name)
//
// After the last submission it polls GET /jobs until every job is
// finished (or cancelled), with a no-progress stall timeout. Exit 0 only
// when zero jobs were lost or stuck; the report prints wall-observed
// submit latency and daemon-reported wait/JCT percentiles.
//
// --arrival-rate switches to an open-loop saturation mode: Poisson
// arrivals (seeded exponential interarrivals) at the given rate for
// --duration wall seconds, one submission attempt each — a 429 counts as
// shed load, never a retry — so the offered load stays fixed no matter
// how the daemon responds. That is the load-testing half of the live SLO
// plane (DESIGN.md): drive the daemon past capacity and watch /stats.
// --assert-slo turns the run into a gate: after the arrival window (and
// --settle seconds for rounds to land) it reads GET /stats and exits 3
// if any SLO target recorded a violation or is violating now.
// --history-out dumps GET /metrics/history to a file for offline
// inspection (muri-report slo).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/build_info.h"
#include "common/stats.h"
#include "job/model.h"
#include "job/trace.h"
#include "obs/json.h"
#include "service/http_client.h"

namespace {

using Clock = std::chrono::steady_clock;
using muri::service::ClientResponse;
using muri::service::http_request;

struct Options {
  int port = 0;
  int jobs = 200;
  std::uint64_t seed = 1;
  double compression = 500;
  std::string trace_path;       // optional CSV (overrides --jobs/--seed)
  double stall_timeout_s = 60;  // wall seconds without progress
  bool json = false;
  // Open-loop saturation mode (jobs per wall second; 0 = closed loop).
  double arrival_rate = 0;
  double duration_s = 10;  // open-loop arrival window, wall seconds
  double settle_s = 2;     // post-window settle before reporting/asserting
  bool assert_slo = false;
  std::string history_out;  // dump GET /metrics/history here
  int max_gpus = 0;  // open loop: drop pool specs above this (0 = no cap)
};

void usage(std::FILE* out) {
  std::fputs(
      "usage: muri-loadgen --port=N [options]\n"
      "  --jobs=N           synthetic trace size (default 200)\n"
      "  --seed=N           synthetic trace seed (default 1)\n"
      "  --trace=FILE       replay a trace CSV instead of generating\n"
      "  --compression=X    sim seconds per wall second; must match the\n"
      "                     daemon's --compression (default 500)\n"
      "  --stall-timeout=S  abort after S wall seconds without progress\n"
      "                     (default 60)\n"
      "  --json             machine-readable report\n"
      "open-loop saturation mode:\n"
      "  --arrival-rate=R   Poisson arrivals at R jobs per wall second,\n"
      "                     one attempt each (429 = shed, no retry)\n"
      "  --duration=S       arrival window, wall seconds (default 10)\n"
      "  --settle=S         post-window wait before reporting (default 2)\n"
      "  --max-gpus=N       drop pool specs needing more than N GPUs, so\n"
      "                     an undersized target sheds (429) instead of\n"
      "                     rejecting invalid specs (400)\n"
      "  --assert-slo       exit 3 unless every daemon SLO target is\n"
      "                     clean (no violations recorded, none active)\n"
      "  --history-out=FILE dump GET /metrics/history to FILE\n",
      out);
}

muri::Trace make_trace(const Options& opts) {
  if (!opts.trace_path.empty()) {
    return muri::read_trace_csv(opts.trace_path, "loadgen");
  }
  // CI-friendly shape: minutes-scale jobs at a rate that keeps a small
  // cluster busy, so a 200-job replay at 500x compression lands in tens
  // of wall seconds.
  muri::PhillyTraceOptions trace_opts;
  trace_opts.name = "loadgen";
  trace_opts.num_jobs = opts.jobs;
  trace_opts.seed = opts.seed;
  trace_opts.jobs_per_hour = 3600;
  trace_opts.duration_log_mean = 5.0;  // e^5 ≈ 150 s median
  trace_opts.duration_log_sigma = 1.0;
  trace_opts.min_duration = 30;
  trace_opts.max_duration = 1200;
  trace_opts.gpu_count_weights = {0.72, 0.10, 0.09, 0.05, 0.03, 0.01};
  return muri::generate_philly_like(trace_opts);
}

std::string submit_body(const muri::Job& job, const std::string& name) {
  std::string body = "{\"model\":\"";
  body += muri::to_string(job.model);
  body += "\",\"gpus\":" + std::to_string(job.num_gpus);
  body += ",\"iterations\":" + std::to_string(job.iterations);
  body += ",\"name\":\"" + name + "\"}";
  return body;
}

// Submits one job, riding out 429 backpressure and daemon restarts.
// Returns the daemon-assigned job id, or -1 after `budget` wall seconds.
long long submit_with_retry(const Options& opts, const muri::Job& job,
                            const std::string& name, double budget_s) {
  const Clock::time_point give_up =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(budget_s));
  int backoff_ms = 50;
  while (Clock::now() < give_up) {
    ClientResponse resp;
    std::string error;
    if (!http_request(opts.port, "POST", "/jobs", submit_body(job, name),
                      resp, &error)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, 1000);
      continue;
    }
    if (resp.status == 202 || resp.status == 200) {
      muri::obs::JsonValue v;
      if (muri::obs::parse_json(resp.body, v) && v.at("job").is_number()) {
        return static_cast<long long>(v.at("job").number);
      }
      return -1;
    }
    if (resp.status == 429 || resp.status == 503) {
      const std::string retry_after = resp.header("retry-after");
      int wait_ms = retry_after.empty()
                        ? backoff_ms
                        : std::atoi(retry_after.c_str()) * 1000;
      if (wait_ms <= 0) wait_ms = backoff_ms;
      std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
      backoff_ms = std::min(backoff_ms * 2, 1000);
      continue;
    }
    std::fprintf(stderr, "muri-loadgen: POST /jobs -> %d: %s\n", resp.status,
                 resp.body.c_str());
    return -1;
  }
  return -1;
}

double pct(std::vector<double> xs, double p) {
  return xs.empty() ? 0.0 : muri::percentile(std::move(xs), p);
}

// GET /metrics/history -> FILE. Best-effort: a 404 (sampling disabled)
// warns but does not change the exit code.
void dump_history(const Options& opts) {
  ClientResponse resp;
  std::string error;
  if (!http_request(opts.port, "GET", "/metrics/history", "", resp,
                    &error)) {
    std::fprintf(stderr, "muri-loadgen: GET /metrics/history failed: %s\n",
                 error.c_str());
    return;
  }
  if (resp.status != 200) {
    std::fprintf(stderr,
                 "muri-loadgen: GET /metrics/history -> %d (run the daemon "
                 "with --sample-interval to enable history)\n",
                 resp.status);
    return;
  }
  std::FILE* f = std::fopen(opts.history_out.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "muri-loadgen: cannot write %s\n",
                 opts.history_out.c_str());
    return;
  }
  std::fwrite(resp.body.data(), 1, resp.body.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "muri-loadgen: wrote history to %s (%zu bytes)\n",
               opts.history_out.c_str(), resp.body.size());
}

// --assert-slo gate: reads the daemon's SLO verdict from GET /stats.
// 0 when every target is clean; 3 on any recorded violation, an active
// violation, or when the daemon has no SLO targets configured (a gate
// that cannot fire is a misconfigured gate).
int check_slo(const Options& opts) {
  ClientResponse resp;
  std::string error;
  if (!http_request(opts.port, "GET", "/stats", "", resp, &error) ||
      resp.status != 200) {
    std::fprintf(stderr, "muri-loadgen: --assert-slo: GET /stats -> %s\n",
                 resp.status != 0 ? std::to_string(resp.status).c_str()
                                  : error.c_str());
    return 3;
  }
  muri::obs::JsonValue root;
  if (!muri::obs::parse_json(resp.body, root) ||
      !root.at("slo").is_object()) {
    std::fprintf(stderr, "muri-loadgen: --assert-slo: bad /stats body\n");
    return 3;
  }
  const muri::obs::JsonValue& slo = root.at("slo");
  if (!slo.at("enabled").boolean) {
    std::fprintf(stderr,
                 "muri-loadgen: --assert-slo: daemon has no SLO targets "
                 "(start it with --slo-wait-p99 et al.)\n");
    return 3;
  }
  int bad = 0;
  for (const muri::obs::JsonValue& t : slo.at("targets").array) {
    const std::string& name = t.at("name").string;
    const double violations = t.at("violations").number;
    const bool violating = t.at("violating").boolean;
    std::fprintf(stderr,
                 "muri-loadgen: slo %-16s value %.4g threshold %.4g "
                 "violations %.0f%s\n",
                 name.c_str(), t.at("value").number,
                 t.at("threshold").number, violations,
                 violating ? " (violating)" : "");
    if (violations > 0 || violating) ++bad;
  }
  if (bad > 0) {
    std::fprintf(stderr, "muri-loadgen: SLO assert FAILED (%d target%s)\n",
                 bad, bad == 1 ? "" : "s");
    return 3;
  }
  std::fprintf(stderr, "muri-loadgen: SLO assert ok\n");
  return 0;
}

// Open-loop saturation: Poisson arrivals for duration_s wall seconds,
// one POST each. Returns 0 when the daemon stayed reachable (shed load
// is an expected outcome, not a failure); 1 when submissions errored.
int run_open_loop(const Options& opts) {
  // Spec pool: reuse the synthetic trace generator for realistic model /
  // GPU / iteration mixes; arrival times come from the Poisson clock, so
  // the trace's own submit times are ignored.
  Options pool_opts = opts;
  pool_opts.jobs = std::max(
      16, static_cast<int>(opts.arrival_rate * opts.duration_s * 2) + 16);
  muri::Trace pool = make_trace(pool_opts);
  if (opts.max_gpus > 0) {
    std::vector<muri::Job> fit;
    for (const muri::Job& j : pool.jobs) {
      if (j.num_gpus <= opts.max_gpus) fit.push_back(j);
    }
    if (fit.empty()) {
      std::fprintf(stderr,
                   "muri-loadgen: no pool spec fits --max-gpus=%d\n",
                   opts.max_gpus);
      return 1;
    }
    pool.jobs = std::move(fit);
  }

  std::mt19937_64 rng(opts.seed);
  std::exponential_distribution<double> interarrival(opts.arrival_rate);

  std::fprintf(stderr,
               "muri-loadgen: open loop — %.3g jobs/s for %gs against "
               "127.0.0.1:%d\n",
               opts.arrival_rate, opts.duration_s, opts.port);

  std::size_t offered = 0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;  // 429/503: shed by admission control
  std::size_t errors = 0;    // transport failures, unexpected statuses
  const Clock::time_point start = Clock::now();
  double t = interarrival(rng);
  while (t <= opts.duration_s) {
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(t)));
    const muri::Job& job = pool.jobs[offered % pool.jobs.size()];
    const std::string name = "ol-" + std::to_string(offered);
    ++offered;
    ClientResponse resp;
    std::string error;
    if (!http_request(opts.port, "POST", "/jobs", submit_body(job, name),
                      resp, &error)) {
      ++errors;
    } else if (resp.status == 202 || resp.status == 200) {
      ++accepted;
    } else if (resp.status == 429 || resp.status == 503) {
      ++rejected;
    } else {
      ++errors;
      std::fprintf(stderr, "muri-loadgen: POST /jobs -> %d: %s", resp.status,
                   resp.body.c_str());
    }
    t += interarrival(rng);
  }
  if (opts.settle_s > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(opts.settle_s)));
  }
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (opts.json) {
    std::printf(
        "{\"mode\":\"open-loop\",\"offered\":%zu,\"accepted\":%zu,"
        "\"rejected\":%zu,\"errors\":%zu,\"arrival_rate\":%g,"
        "\"duration_s\":%g,\"wall_s\":%.3f}\n",
        offered, accepted, rejected, errors, opts.arrival_rate,
        opts.duration_s, wall_s);
  } else {
    std::printf(
        "open loop: offered %zu  accepted %zu  rejected %zu  errors %zu  "
        "wall %.1fs\n",
        offered, accepted, rejected, errors, wall_s);
  }
  return errors > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else if (arg == "--version") {
      std::printf("muri-loadgen %s (%s)\n", muri::build_version(),
                  muri::build_git_sha());
      return 0;
    } else if (arg.rfind("--port=", 0) == 0) {
      opts.port = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      opts.jobs = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--seed=", 0) == 0) {
      opts.seed = static_cast<std::uint64_t>(
          std::strtoull(arg.c_str() + 7, nullptr, 10));
    } else if (arg.rfind("--trace=", 0) == 0) {
      opts.trace_path = arg.substr(8);
    } else if (arg.rfind("--compression=", 0) == 0) {
      opts.compression = std::atof(arg.c_str() + 14);
    } else if (arg.rfind("--stall-timeout=", 0) == 0) {
      opts.stall_timeout_s = std::atof(arg.c_str() + 16);
    } else if (arg == "--json") {
      opts.json = true;
    } else if (arg.rfind("--arrival-rate=", 0) == 0) {
      opts.arrival_rate = std::atof(arg.c_str() + 15);
    } else if (arg.rfind("--duration=", 0) == 0) {
      opts.duration_s = std::atof(arg.c_str() + 11);
    } else if (arg.rfind("--settle=", 0) == 0) {
      opts.settle_s = std::atof(arg.c_str() + 9);
    } else if (arg.rfind("--max-gpus=", 0) == 0) {
      opts.max_gpus = std::atoi(arg.c_str() + 11);
    } else if (arg == "--assert-slo") {
      opts.assert_slo = true;
    } else if (arg.rfind("--history-out=", 0) == 0) {
      opts.history_out = arg.substr(14);
    } else {
      std::fprintf(stderr, "muri-loadgen: unknown flag '%s'\n", arg.c_str());
      usage(stderr);
      return 1;
    }
  }
  if (opts.port <= 0 || opts.compression <= 0 || opts.arrival_rate < 0 ||
      (opts.arrival_rate > 0 && opts.duration_s <= 0)) {
    usage(stderr);
    return 1;
  }

  if (opts.arrival_rate > 0) {
    int rc = run_open_loop(opts);
    if (!opts.history_out.empty()) dump_history(opts);
    if (opts.assert_slo) {
      const int slo_rc = check_slo(opts);
      if (rc == 0) rc = slo_rc;
    }
    return rc;
  }

  const muri::Trace trace = make_trace(opts);
  const std::size_t n = trace.jobs.size();
  std::fprintf(stderr,
               "muri-loadgen: replaying %zu jobs at %gx against "
               "127.0.0.1:%d\n",
               n, opts.compression, opts.port);

  // name -> (trace index, daemon job id); ids re-learned on resubmit.
  std::map<std::string, long long> ids;
  std::vector<double> submit_latency_ms;  // wall: due time -> accepted

  const Clock::time_point start = Clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    const muri::Job& job = trace.jobs[i];
    const double due_wall_s = job.submit_time / opts.compression;
    const Clock::time_point due =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(due_wall_s));
    std::this_thread::sleep_until(due);
    const std::string name = "lg-" + std::to_string(i);
    const Clock::time_point before = Clock::now();
    const long long id =
        submit_with_retry(opts, job, name, opts.stall_timeout_s);
    if (id < 0) {
      std::fprintf(stderr, "muri-loadgen: giving up on job %zu (%s)\n", i,
                   name.c_str());
      return 1;
    }
    ids[name] = id;
    submit_latency_ms.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - before)
            .count());
  }

  // Poll until every job reaches a terminal state; resubmit any id the
  // daemon no longer knows (lost to a crash before its WAL record).
  std::set<std::string> open;
  for (const auto& [name, id] : ids) open.insert(name);
  std::vector<double> waits;
  std::vector<double> jcts;
  std::size_t finished = 0;
  std::size_t cancelled = 0;
  Clock::time_point last_progress = Clock::now();
  std::size_t last_open = open.size();

  while (!open.empty()) {
    ClientResponse resp;
    std::string error;
    if (!http_request(opts.port, "GET", "/jobs", "", resp, &error) ||
        resp.status != 200) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    } else {
      muri::obs::JsonValue root;
      std::map<long long, const muri::obs::JsonValue*> by_id;
      if (muri::obs::parse_json(resp.body, root)) {
        for (const muri::obs::JsonValue& j : root.at("jobs").array) {
          by_id[static_cast<long long>(j.at("job").number)] = &j;
        }
      }
      for (auto it = open.begin(); it != open.end();) {
        const std::string& name = *it;
        const auto found = by_id.find(ids[name]);
        if (found == by_id.end()) {
          // Unknown to the daemon: resubmit under the same name.
          const std::size_t idx = static_cast<std::size_t>(
              std::atoll(name.c_str() + 3));
          const long long id = submit_with_retry(
              opts, trace.jobs[idx], name, opts.stall_timeout_s);
          if (id >= 0) ids[name] = id;
          ++it;
          continue;
        }
        const std::string& state = found->second->at("state").string;
        if (state == "finished" || state == "cancelled") {
          if (state == "finished") {
            ++finished;
            const muri::obs::JsonValue& j = *found->second;
            if (j.at("end_t").is_number() && j.at("submit_t").is_number()) {
              jcts.push_back(j.at("end_t").number - j.at("submit_t").number);
            }
            if (j.at("first_scheduled_t").is_number() &&
                j.at("submit_t").is_number()) {
              waits.push_back(j.at("first_scheduled_t").number -
                              j.at("submit_t").number);
            }
          } else {
            ++cancelled;
          }
          it = open.erase(it);
        } else {
          ++it;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (open.size() < last_open) {
      last_open = open.size();
      last_progress = Clock::now();
    } else if (std::chrono::duration<double>(Clock::now() - last_progress)
                   .count() > opts.stall_timeout_s) {
      std::fprintf(stderr,
                   "muri-loadgen: stalled — %zu jobs stuck after %g s\n",
                   open.size(), opts.stall_timeout_s);
      return 1;
    }
  }

  const double wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (opts.json) {
    std::printf(
        "{\"jobs\":%zu,\"finished\":%zu,\"cancelled\":%zu,\"lost\":0,"
        "\"wall_s\":%.3f,"
        "\"submit_ms\":{\"p50\":%.3f,\"p90\":%.3f,\"p99\":%.3f},"
        "\"wait_s\":{\"p50\":%.3f,\"p90\":%.3f,\"p99\":%.3f},"
        "\"jct_s\":{\"p50\":%.3f,\"p90\":%.3f,\"p99\":%.3f}}\n",
        n, finished, cancelled, wall_s, pct(submit_latency_ms, 50),
        pct(submit_latency_ms, 90), pct(submit_latency_ms, 99),
        pct(waits, 50), pct(waits, 90), pct(waits, 99), pct(jcts, 50),
        pct(jcts, 90), pct(jcts, 99));
  } else {
    std::printf("jobs %zu  finished %zu  cancelled %zu  lost 0  wall %.1fs\n",
                n, finished, cancelled, wall_s);
    std::printf("submit latency ms  p50 %.2f  p90 %.2f  p99 %.2f\n",
                pct(submit_latency_ms, 50), pct(submit_latency_ms, 90),
                pct(submit_latency_ms, 99));
    std::printf("wait (sim s)       p50 %.1f  p90 %.1f  p99 %.1f\n",
                pct(waits, 50), pct(waits, 90), pct(waits, 99));
    std::printf("jct (sim s)        p50 %.1f  p90 %.1f  p99 %.1f\n",
                pct(jcts, 50), pct(jcts, 90), pct(jcts, 99));
  }
  if (!opts.history_out.empty()) dump_history(opts);
  return opts.assert_slo ? check_slo(opts) : 0;
}
