#!/usr/bin/env python3
"""Gate scheduler-round perf against a committed baseline.

Compares the BENCH_sched_round.json a CI run just produced against the
checked-in bench/baselines/BENCH_sched_round.json and fails (exit 1) when
any (config, jobs, threads) point regressed by more than the threshold.

CI runners and the machine that produced the baseline differ in raw
speed, so absolute times are not comparable. The gate normalizes by the
median ratio across all points first: a uniformly slower machine shifts
every ratio equally and cancels out, while a real regression sticks out
of the distribution. A point fails only when its normalized ratio
exceeds 1 + threshold.

Sub-millisecond sweep points jitter by tens of percent run to run, so a
ratio alone would cry wolf; a point regresses only when it exceeds the
threshold AND slows down by at least --min-delta-ms in absolute terms.

    diff_bench.py [--threshold=0.20] [--min-delta-ms=0.25] \
        [--key=round_seconds] [--strict] baseline.json current.json

Exit status: 0 clean, 1 regression / missing or unreadable baseline /
malformed input, 2 when the two files share no sweep points (wrong
baseline checked in). A point missing the compared metric is only a
warning — the point is skipped and the rest still gate — because an
older baseline predating a new metric must not mask regressions in the
metrics it does have. With --strict that leniency is off: a point
lacking the metric is a hard failure (exit 1), for per-PR gates where
baseline and bench were built from the same tree and a missing metric
means the instrumentation silently vanished. A missing *file* is never
soft: in CI that means the baseline was not checked in (or the bench
never wrote its output), and silently passing would disable the gate
entirely.
"""

import argparse
import json
import statistics
import sys


def load_points(path, key, strict=False):
    with open(path) as f:
        doc = json.load(f)
    points = {}
    for p in doc.get("sweep", []):
        ident = (p["config"], p["jobs"], p["threads"])
        value = p.get(key)
        if value is None:
            if strict:
                raise ValueError(
                    f"{path}: point {ident} lacks {key!r} (--strict)")
            print(f"diff_bench: warning: {path}: point {ident} lacks "
                  f"{key!r}; skipped", file=sys.stderr)
            continue
        if not isinstance(value, (int, float)) or value <= 0:
            raise ValueError(f"{path}: point {ident} has bad {key!r}: {value!r}")
        points[ident] = float(value)
    if not points:
        raise ValueError(f"{path}: no sweep points with metric {key!r}")
    return points


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed normalized slowdown (default 0.20)")
    parser.add_argument("--min-delta-ms", type=float, default=0.25,
                        help="ignore regressions smaller than this many "
                             "milliseconds (default 0.25)")
    parser.add_argument("--key", default="round_seconds",
                        help="sweep field to compare (default round_seconds)")
    parser.add_argument("--strict", action="store_true",
                        help="fail (exit 1) on points missing the compared "
                             "metric instead of skipping them")
    args = parser.parse_args()

    try:
        base = load_points(args.baseline, args.key, args.strict)
    except OSError as e:
        print(f"diff_bench: baseline missing or unreadable: {e}\n"
              f"diff_bench: commit a baseline at {args.baseline} "
              f"(run the sweep locally and copy its JSON)", file=sys.stderr)
        return 1
    except (ValueError, KeyError) as e:
        print(f"diff_bench: malformed baseline: {e}", file=sys.stderr)
        return 1
    try:
        cur = load_points(args.current, args.key, args.strict)
    except (OSError, ValueError, KeyError) as e:
        print(f"diff_bench: cannot read current sweep: {e}", file=sys.stderr)
        return 1

    shared = sorted(set(base) & set(cur))
    if not shared:
        print("diff_bench: baseline and current share no sweep points "
              "(stale baseline?)", file=sys.stderr)
        return 2
    for ident in sorted(set(base) ^ set(cur)):
        side = "baseline" if ident in base else "current"
        print(f"diff_bench: note: {ident} only in {side}; skipped")

    ratios = {ident: cur[ident] / base[ident] for ident in shared}
    machine_factor = statistics.median(ratios.values())
    limit = 1.0 + args.threshold

    regressed = []
    print(f"diff_bench: {len(shared)} shared points, machine factor "
          f"{machine_factor:.3f}, limit {limit:.2f}x after normalization")
    for ident in shared:
        normalized = ratios[ident] / machine_factor
        delta_ms = (cur[ident] - base[ident] * machine_factor) * 1e3
        config, jobs, threads = ident
        line = (f"  {config:<9} jobs={jobs:<4} threads={threads}  "
                f"{base[ident] * 1e3:8.3f} ms -> {cur[ident] * 1e3:8.3f} ms  "
                f"({normalized:.2f}x normalized)")
        if normalized > limit and delta_ms >= args.min_delta_ms:
            regressed.append(ident)
            line += "  REGRESSION"
        print(line)

    if regressed:
        print(f"diff_bench: {len(regressed)} point(s) regressed more than "
              f"{args.threshold:.0%} over baseline ({args.baseline})",
              file=sys.stderr)
        return 1
    print("diff_bench: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
