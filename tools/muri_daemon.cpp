// muri-daemon — the Muri scheduler as a long-running service
// (src/service/daemon.h; DESIGN.md "Service architecture").
//
//   muri-daemon --port=8080 --wal=daemon.wal
//   muri-daemon --port=8080 --wal=daemon.wal --resume   # after a crash
//
// The job API rides the metrics listener:
//
//   curl -X POST -d '{"model":"resnet18","gpus":2,"iterations":1000}' \
//       http://127.0.0.1:8080/jobs
//   curl http://127.0.0.1:8080/jobs/0
//   curl -X DELETE http://127.0.0.1:8080/jobs/0
//   curl http://127.0.0.1:8080/jobs http://127.0.0.1:8080/metrics
//
// SIGTERM/SIGINT triggers a graceful shutdown: stop admitting (503),
// drain the admission queue into durable job_submit records, checkpoint
// progress, fsync the WAL, exit 0. --compression speeds the simulated
// clock for trace replays (see muri-loadgen).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/build_info.h"
#include "service/daemon.h"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void on_signal(int) { g_shutdown = 1; }

void usage(std::FILE* out) {
  std::fputs(
      "usage: muri-daemon [options]\n"
      "  --port=N              listen port (default 0 = ephemeral)\n"
      "  --wal=FILE            durable decision WAL (default: none)\n"
      "  --resume              recover jobs and clock from the WAL\n"
      "  --scheduler=NAME      muri-l|muri-s|fifo|srtf|srsf (default muri-l)\n"
      "  --machines=N          cluster machines (default 8)\n"
      "  --gpus-per-machine=N  GPUs per machine (default 8)\n"
      "  --round-interval=S    fallback round interval, sim seconds "
      "(default 360)\n"
      "  --debounce-ms=N       arrival-batching window, wall ms (default "
      "50)\n"
      "  --compression=X       sim seconds per wall second (default 1)\n"
      "  --queue-capacity=N    admission queue bound (default 64)\n"
      "  --max-active-jobs=N   429 past N jobs in the system (engine +\n"
      "                        queue; default 0 = unbounded)\n"
      "  --fsync=MODE          none|interval|every (default interval)\n"
      "  --crash-env           honor MURI_CRASH_AT/_TORN (CI crash legs)\n"
      "  --no-jobtrace         disable per-job span timelines "
      "(/jobs/<id>/timeline 404s)\n"
      "  --version             print version and exit\n"
      "live SLO & health plane (DESIGN.md):\n"
      "  --sample-interval=S   wall seconds between /metrics/history "
      "samples\n"
      "                        (default 0 = sampling off, history 404s)\n"
      "  --history-capacity=N  ring-buffer points per series (default "
      "600)\n"
      "  --slo-window=S        rolling SLO window, wall seconds (default "
      "60)\n"
      "  --slo-wait-p99=S      p99 queue-wait target, sim seconds\n"
      "  --slo-round-p99=S     p99 round-latency target, wall seconds\n"
      "  --slo-fsync-max=S     max WAL fsync latency target, wall seconds\n"
      "  --slo-stall-max=S     max event-loop stall target, wall seconds\n"
      "  --watchdog-stall=S    /healthz degrades past this heartbeat age "
      "(default 5)\n"
      "  --watchdog-round-factor=X  ... or when no round ran for X x\n"
      "                        round-interval with jobs active (default "
      "4)\n",
      out);
}

bool parse_int(const char* s, long long& out) {
  char* end = nullptr;
  out = std::strtoll(s, &end, 10);
  return end != s && *end == '\0';
}

bool parse_double(const char* s, double& out) {
  char* end = nullptr;
  out = std::strtod(s, &end);
  return end != s && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  muri::service::DaemonOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    long long n = 0;
    double d = 0;
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else if (arg == "--version") {
      std::printf("muri-daemon %s (%s)\n", muri::build_version(),
                  muri::build_git_sha());
      return 0;
    } else if (arg == "--no-jobtrace") {
      options.jobtrace_enabled = false;
    } else if (arg.rfind("--port=", 0) == 0 &&
               parse_int(arg.c_str() + 7, n)) {
      options.http_port = static_cast<int>(n);
    } else if (arg.rfind("--wal=", 0) == 0) {
      options.wal_path = arg.substr(6);
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg.rfind("--scheduler=", 0) == 0) {
      options.scheduler = arg.substr(12);
    } else if (arg.rfind("--machines=", 0) == 0 &&
               parse_int(arg.c_str() + 11, n)) {
      options.cluster.num_machines = static_cast<int>(n);
    } else if (arg.rfind("--gpus-per-machine=", 0) == 0 &&
               parse_int(arg.c_str() + 19, n)) {
      options.cluster.gpus_per_machine = static_cast<int>(n);
    } else if (arg.rfind("--round-interval=", 0) == 0 &&
               parse_double(arg.c_str() + 17, d)) {
      options.round_interval_s = d;
    } else if (arg.rfind("--debounce-ms=", 0) == 0 &&
               parse_int(arg.c_str() + 14, n)) {
      options.debounce_ms = static_cast<int>(n);
    } else if (arg.rfind("--compression=", 0) == 0 &&
               parse_double(arg.c_str() + 14, d) && d > 0) {
      options.compression = d;
    } else if (arg.rfind("--queue-capacity=", 0) == 0 &&
               parse_int(arg.c_str() + 17, n) && n > 0) {
      options.queue_capacity = static_cast<std::size_t>(n);
    } else if (arg.rfind("--max-active-jobs=", 0) == 0 &&
               parse_int(arg.c_str() + 18, n) && n >= 0) {
      options.max_active_jobs = static_cast<int>(n);
    } else if (arg.rfind("--fsync=", 0) == 0) {
      const std::string mode = arg.substr(8);
      using Fsync = muri::recovery::DurableSinkOptions::Fsync;
      if (mode == "none") {
        options.fsync = Fsync::kNone;
      } else if (mode == "interval") {
        options.fsync = Fsync::kInterval;
      } else if (mode == "every") {
        options.fsync = Fsync::kEveryRecord;
      } else {
        std::fprintf(stderr, "muri-daemon: unknown fsync mode '%s'\n",
                     mode.c_str());
        return 1;
      }
    } else if (arg == "--crash-env") {
      options.honor_crash_env = true;
    } else if (arg.rfind("--sample-interval=", 0) == 0 &&
               parse_double(arg.c_str() + 18, d) && d >= 0) {
      options.sample_interval_s = d;
    } else if (arg.rfind("--history-capacity=", 0) == 0 &&
               parse_int(arg.c_str() + 19, n) && n > 0) {
      options.history_capacity = static_cast<std::size_t>(n);
    } else if (arg.rfind("--slo-window=", 0) == 0 &&
               parse_double(arg.c_str() + 13, d) && d > 0) {
      options.slo.window_s = d;
    } else if (arg.rfind("--slo-wait-p99=", 0) == 0 &&
               parse_double(arg.c_str() + 15, d)) {
      options.slo.queue_wait_p99_s = d;
    } else if (arg.rfind("--slo-round-p99=", 0) == 0 &&
               parse_double(arg.c_str() + 16, d)) {
      options.slo.round_latency_p99_s = d;
    } else if (arg.rfind("--slo-fsync-max=", 0) == 0 &&
               parse_double(arg.c_str() + 16, d)) {
      options.slo.fsync_max_s = d;
    } else if (arg.rfind("--slo-stall-max=", 0) == 0 &&
               parse_double(arg.c_str() + 16, d)) {
      options.slo.loop_stall_max_s = d;
    } else if (arg.rfind("--watchdog-stall=", 0) == 0 &&
               parse_double(arg.c_str() + 17, d) && d > 0) {
      options.watchdog_stall_s = d;
    } else if (arg.rfind("--watchdog-round-factor=", 0) == 0 &&
               parse_double(arg.c_str() + 24, d) && d > 0) {
      options.watchdog_round_factor = d;
    } else {
      std::fprintf(stderr, "muri-daemon: unknown flag '%s'\n", arg.c_str());
      usage(stderr);
      return 1;
    }
  }

  muri::service::MuriDaemon daemon(std::move(options));
  std::string error;
  if (!daemon.start(&error)) {
    std::fprintf(stderr, "muri-daemon: %s\n", error.c_str());
    return 1;
  }
  std::printf("listening on 127.0.0.1:%d\n", daemon.port());
  std::fflush(stdout);

  struct sigaction sa = {};
  sa.sa_handler = on_signal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  while (g_shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("shutting down\n");
  std::fflush(stdout);
  daemon.stop(g_shutdown != 0 ? "signal" : "stop");
  return 0;
}
