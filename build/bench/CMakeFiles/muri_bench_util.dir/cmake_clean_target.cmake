file(REMOVE_RECURSE
  "libmuri_bench_util.a"
)
