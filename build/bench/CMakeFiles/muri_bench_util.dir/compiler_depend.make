# Empty compiler generated dependencies file for muri_bench_util.
# This may be replaced when dependencies are built.
