file(REMOVE_RECURSE
  "CMakeFiles/muri_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/muri_bench_util.dir/bench_util.cpp.o.d"
  "libmuri_bench_util.a"
  "libmuri_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muri_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
