# Empty compiler generated dependencies file for bench_ext_gittins.
# This may be replaced when dependencies are built.
