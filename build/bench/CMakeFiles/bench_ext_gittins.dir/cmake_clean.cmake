file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_gittins.dir/bench_ext_gittins.cpp.o"
  "CMakeFiles/bench_ext_gittins.dir/bench_ext_gittins.cpp.o.d"
  "bench_ext_gittins"
  "bench_ext_gittins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_gittins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
