# Empty dependencies file for live_interleave.
# This may be replaced when dependencies are built.
