file(REMOVE_RECURSE
  "CMakeFiles/live_interleave.dir/live_interleave.cpp.o"
  "CMakeFiles/live_interleave.dir/live_interleave.cpp.o.d"
  "live_interleave"
  "live_interleave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_interleave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
