file(REMOVE_RECURSE
  "CMakeFiles/trace_sim.dir/trace_sim.cpp.o"
  "CMakeFiles/trace_sim.dir/trace_sim.cpp.o.d"
  "trace_sim"
  "trace_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
