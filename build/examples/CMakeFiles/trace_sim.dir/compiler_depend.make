# Empty compiler generated dependencies file for trace_sim.
# This may be replaced when dependencies are built.
