# Empty compiler generated dependencies file for interleave_explorer.
# This may be replaced when dependencies are built.
