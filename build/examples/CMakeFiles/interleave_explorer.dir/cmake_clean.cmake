file(REMOVE_RECURSE
  "CMakeFiles/interleave_explorer.dir/interleave_explorer.cpp.o"
  "CMakeFiles/interleave_explorer.dir/interleave_explorer.cpp.o.d"
  "interleave_explorer"
  "interleave_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interleave_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
