file(REMOVE_RECURSE
  "CMakeFiles/test_gittins.dir/test_gittins.cpp.o"
  "CMakeFiles/test_gittins.dir/test_gittins.cpp.o.d"
  "test_gittins"
  "test_gittins.pdb"
  "test_gittins[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gittins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
