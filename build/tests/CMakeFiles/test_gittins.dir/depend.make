# Empty dependencies file for test_gittins.
# This may be replaced when dependencies are built.
