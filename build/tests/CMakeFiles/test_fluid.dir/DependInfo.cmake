
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_fluid.cpp" "tests/CMakeFiles/test_fluid.dir/test_fluid.cpp.o" "gcc" "tests/CMakeFiles/test_fluid.dir/test_fluid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/muri_common.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/muri_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/job/CMakeFiles/muri_job.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/muri_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/interleave/CMakeFiles/muri_interleave.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/muri_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/scheduler/CMakeFiles/muri_scheduler.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/muri_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/muri_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
