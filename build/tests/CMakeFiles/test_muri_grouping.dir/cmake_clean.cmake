file(REMOVE_RECURSE
  "CMakeFiles/test_muri_grouping.dir/test_muri_grouping.cpp.o"
  "CMakeFiles/test_muri_grouping.dir/test_muri_grouping.cpp.o.d"
  "test_muri_grouping"
  "test_muri_grouping.pdb"
  "test_muri_grouping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_muri_grouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
