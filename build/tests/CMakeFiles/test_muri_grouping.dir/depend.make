# Empty dependencies file for test_muri_grouping.
# This may be replaced when dependencies are built.
