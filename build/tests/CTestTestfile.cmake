# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_matching[1]_include.cmake")
include("/root/repo/build/tests/test_job[1]_include.cmake")
include("/root/repo/build/tests/test_interleave[1]_include.cmake")
include("/root/repo/build/tests/test_profiler[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_fluid[1]_include.cmake")
include("/root/repo/build/tests/test_gittins[1]_include.cmake")
include("/root/repo/build/tests/test_flags[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_execution_model[1]_include.cmake")
include("/root/repo/build/tests/test_muri_grouping[1]_include.cmake")
