# Empty compiler generated dependencies file for muri_common.
# This may be replaced when dependencies are built.
