file(REMOVE_RECURSE
  "CMakeFiles/muri_common.dir/flags.cpp.o"
  "CMakeFiles/muri_common.dir/flags.cpp.o.d"
  "CMakeFiles/muri_common.dir/logging.cpp.o"
  "CMakeFiles/muri_common.dir/logging.cpp.o.d"
  "CMakeFiles/muri_common.dir/rng.cpp.o"
  "CMakeFiles/muri_common.dir/rng.cpp.o.d"
  "CMakeFiles/muri_common.dir/stats.cpp.o"
  "CMakeFiles/muri_common.dir/stats.cpp.o.d"
  "CMakeFiles/muri_common.dir/types.cpp.o"
  "CMakeFiles/muri_common.dir/types.cpp.o.d"
  "libmuri_common.a"
  "libmuri_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muri_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
