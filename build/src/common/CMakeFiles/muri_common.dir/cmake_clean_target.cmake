file(REMOVE_RECURSE
  "libmuri_common.a"
)
