# Empty dependencies file for muri_common.
# This may be replaced when dependencies are built.
