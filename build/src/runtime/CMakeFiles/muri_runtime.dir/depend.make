# Empty dependencies file for muri_runtime.
# This may be replaced when dependencies are built.
