file(REMOVE_RECURSE
  "libmuri_runtime.a"
)
