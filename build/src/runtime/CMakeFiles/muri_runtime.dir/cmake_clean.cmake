file(REMOVE_RECURSE
  "CMakeFiles/muri_runtime.dir/executor.cpp.o"
  "CMakeFiles/muri_runtime.dir/executor.cpp.o.d"
  "libmuri_runtime.a"
  "libmuri_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muri_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
