
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scheduler/baselines.cpp" "src/scheduler/CMakeFiles/muri_scheduler.dir/baselines.cpp.o" "gcc" "src/scheduler/CMakeFiles/muri_scheduler.dir/baselines.cpp.o.d"
  "/root/repo/src/scheduler/gittins.cpp" "src/scheduler/CMakeFiles/muri_scheduler.dir/gittins.cpp.o" "gcc" "src/scheduler/CMakeFiles/muri_scheduler.dir/gittins.cpp.o.d"
  "/root/repo/src/scheduler/muri.cpp" "src/scheduler/CMakeFiles/muri_scheduler.dir/muri.cpp.o" "gcc" "src/scheduler/CMakeFiles/muri_scheduler.dir/muri.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/muri_common.dir/DependInfo.cmake"
  "/root/repo/build/src/job/CMakeFiles/muri_job.dir/DependInfo.cmake"
  "/root/repo/build/src/interleave/CMakeFiles/muri_interleave.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/muri_matching.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
