file(REMOVE_RECURSE
  "libmuri_scheduler.a"
)
