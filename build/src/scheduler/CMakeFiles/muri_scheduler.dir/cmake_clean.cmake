file(REMOVE_RECURSE
  "CMakeFiles/muri_scheduler.dir/baselines.cpp.o"
  "CMakeFiles/muri_scheduler.dir/baselines.cpp.o.d"
  "CMakeFiles/muri_scheduler.dir/gittins.cpp.o"
  "CMakeFiles/muri_scheduler.dir/gittins.cpp.o.d"
  "CMakeFiles/muri_scheduler.dir/muri.cpp.o"
  "CMakeFiles/muri_scheduler.dir/muri.cpp.o.d"
  "libmuri_scheduler.a"
  "libmuri_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muri_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
