# Empty compiler generated dependencies file for muri_scheduler.
# This may be replaced when dependencies are built.
