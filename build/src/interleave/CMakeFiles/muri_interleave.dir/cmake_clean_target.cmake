file(REMOVE_RECURSE
  "libmuri_interleave.a"
)
