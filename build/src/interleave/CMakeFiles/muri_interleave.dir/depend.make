# Empty dependencies file for muri_interleave.
# This may be replaced when dependencies are built.
