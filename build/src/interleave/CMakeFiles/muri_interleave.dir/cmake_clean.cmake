file(REMOVE_RECURSE
  "CMakeFiles/muri_interleave.dir/efficiency.cpp.o"
  "CMakeFiles/muri_interleave.dir/efficiency.cpp.o.d"
  "libmuri_interleave.a"
  "libmuri_interleave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muri_interleave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
