file(REMOVE_RECURSE
  "libmuri_cluster.a"
)
