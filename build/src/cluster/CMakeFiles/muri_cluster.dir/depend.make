# Empty dependencies file for muri_cluster.
# This may be replaced when dependencies are built.
