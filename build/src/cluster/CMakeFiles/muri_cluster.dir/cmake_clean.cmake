file(REMOVE_RECURSE
  "CMakeFiles/muri_cluster.dir/cluster.cpp.o"
  "CMakeFiles/muri_cluster.dir/cluster.cpp.o.d"
  "libmuri_cluster.a"
  "libmuri_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muri_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
