file(REMOVE_RECURSE
  "CMakeFiles/muri_profiler.dir/profiler.cpp.o"
  "CMakeFiles/muri_profiler.dir/profiler.cpp.o.d"
  "libmuri_profiler.a"
  "libmuri_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muri_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
