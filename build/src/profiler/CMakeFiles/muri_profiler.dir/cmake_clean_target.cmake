file(REMOVE_RECURSE
  "libmuri_profiler.a"
)
