# Empty compiler generated dependencies file for muri_profiler.
# This may be replaced when dependencies are built.
