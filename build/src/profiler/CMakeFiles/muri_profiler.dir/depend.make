# Empty dependencies file for muri_profiler.
# This may be replaced when dependencies are built.
