file(REMOVE_RECURSE
  "libmuri_matching.a"
)
