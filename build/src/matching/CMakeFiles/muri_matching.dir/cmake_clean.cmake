file(REMOVE_RECURSE
  "CMakeFiles/muri_matching.dir/blossom.cpp.o"
  "CMakeFiles/muri_matching.dir/blossom.cpp.o.d"
  "CMakeFiles/muri_matching.dir/brute_force.cpp.o"
  "CMakeFiles/muri_matching.dir/brute_force.cpp.o.d"
  "CMakeFiles/muri_matching.dir/graph.cpp.o"
  "CMakeFiles/muri_matching.dir/graph.cpp.o.d"
  "libmuri_matching.a"
  "libmuri_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muri_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
