# Empty compiler generated dependencies file for muri_matching.
# This may be replaced when dependencies are built.
