# Empty compiler generated dependencies file for muri_sim.
# This may be replaced when dependencies are built.
