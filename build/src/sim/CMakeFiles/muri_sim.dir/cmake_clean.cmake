file(REMOVE_RECURSE
  "CMakeFiles/muri_sim.dir/fluid.cpp.o"
  "CMakeFiles/muri_sim.dir/fluid.cpp.o.d"
  "CMakeFiles/muri_sim.dir/simulator.cpp.o"
  "CMakeFiles/muri_sim.dir/simulator.cpp.o.d"
  "libmuri_sim.a"
  "libmuri_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muri_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
