file(REMOVE_RECURSE
  "libmuri_sim.a"
)
