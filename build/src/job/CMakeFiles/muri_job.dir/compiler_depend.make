# Empty compiler generated dependencies file for muri_job.
# This may be replaced when dependencies are built.
