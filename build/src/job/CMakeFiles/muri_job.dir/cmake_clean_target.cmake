file(REMOVE_RECURSE
  "libmuri_job.a"
)
