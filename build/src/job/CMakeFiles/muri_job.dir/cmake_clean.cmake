file(REMOVE_RECURSE
  "CMakeFiles/muri_job.dir/job.cpp.o"
  "CMakeFiles/muri_job.dir/job.cpp.o.d"
  "CMakeFiles/muri_job.dir/model.cpp.o"
  "CMakeFiles/muri_job.dir/model.cpp.o.d"
  "CMakeFiles/muri_job.dir/trace.cpp.o"
  "CMakeFiles/muri_job.dir/trace.cpp.o.d"
  "libmuri_job.a"
  "libmuri_job.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muri_job.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
